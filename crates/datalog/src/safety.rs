//! Install-time safety checks (range restriction).
//!
//! Following §2.1 of the paper: "negation … in the body must be safe —
//! every variable occurring in a negated literal must also occur somewhere
//! in a non-negated literal." We additionally check that head variables
//! are range-restricted and that comparison operands can be bound by a
//! left-to-right evaluation (the evaluation order the engine uses).

use crate::ast::{BodyItem, CmpOp, Expr, PredRef, Rule, Term};
use crate::builtins::Builtins;
use crate::intern::Symbol;
use crate::lexer::Span;
use std::collections::HashSet;
use std::fmt;

/// A rule safety violation. The `span` is the statement's `line:col` when
/// the rule came from [`crate::parser::parse_program`] (via
/// [`check_rule_at`]); `Span::UNKNOWN` otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyError {
    /// A head variable does not occur in any positive body literal.
    UnrestrictedHeadVar {
        /// The variable.
        var: Symbol,
        /// The rule, printed.
        rule: String,
        /// Source position of the rule.
        span: Span,
    },
    /// A variable of a negated literal does not occur positively.
    UnsafeNegation {
        /// The variable.
        var: Symbol,
        /// The rule, printed.
        rule: String,
        /// Source position of the rule.
        span: Span,
    },
    /// A comparison can never have both sides bound under left-to-right
    /// evaluation.
    UnboundComparison {
        /// The item, printed.
        item: String,
        /// The rule, printed.
        rule: String,
        /// Source position of the rule.
        span: Span,
    },
    /// The aggregated variable does not occur in the body.
    UnboundAggregate {
        /// The variable.
        var: Symbol,
        /// The rule, printed.
        rule: String,
        /// Source position of the rule.
        span: Span,
    },
}

impl SafetyError {
    /// Source position of the offending rule (`Span::UNKNOWN` when the
    /// rule was built programmatically).
    pub fn span(&self) -> Span {
        match self {
            SafetyError::UnrestrictedHeadVar { span, .. }
            | SafetyError::UnsafeNegation { span, .. }
            | SafetyError::UnboundComparison { span, .. }
            | SafetyError::UnboundAggregate { span, .. } => *span,
        }
    }

    fn with_span(mut self, span: Span) -> SafetyError {
        match &mut self {
            SafetyError::UnrestrictedHeadVar { span: s, .. }
            | SafetyError::UnsafeNegation { span: s, .. }
            | SafetyError::UnboundComparison { span: s, .. }
            | SafetyError::UnboundAggregate { span: s, .. } => *s = span,
        }
        self
    }
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyError::UnrestrictedHeadVar { var, rule, .. } => {
                write!(f, "head variable {var} not bound by the body in '{rule}'")?;
            }
            SafetyError::UnsafeNegation { var, rule, .. } => {
                write!(f, "variable {var} occurs only under negation in '{rule}'")?;
            }
            SafetyError::UnboundComparison { item, rule, .. } => {
                write!(f, "comparison '{item}' can never be evaluated in '{rule}'")?;
            }
            SafetyError::UnboundAggregate { var, rule, .. } => {
                write!(
                    f,
                    "aggregated variable {var} not bound by the body in '{rule}'"
                )?;
            }
        }
        if self.span().is_known() {
            write!(f, " at line {}", self.span())?;
        }
        Ok(())
    }
}

impl std::error::Error for SafetyError {}

/// Variables a positive literal can bind. Quote arguments bind every
/// variable occurring inside them (pattern matching binds meta-variables).
fn positive_bindables(item: &BodyItem, builtins: &Builtins, out: &mut HashSet<Symbol>) {
    let BodyItem::Lit {
        negated: false,
        atom,
    } = item
    else {
        return;
    };
    // A builtin may bind output positions; treat all its variables as
    // bindable (the runtime checks actual binding requirements).
    let _ = builtins;
    if let PredRef::Var(v) = atom.pred {
        out.insert(v);
    }
    for t in atom.all_args() {
        collect_term_vars(t, out);
    }
}

/// All variables occurring in a term, including inside quotes.
fn collect_term_vars(term: &Term, out: &mut HashSet<Symbol>) {
    match term {
        Term::Var(v) | Term::SeqVar(v) => {
            out.insert(*v);
        }
        Term::Val(_) => {}
        Term::Quote(rule) => {
            for atom in &rule.heads {
                if let PredRef::Var(v) = atom.pred {
                    out.insert(v);
                }
                for t in atom.all_args() {
                    collect_term_vars(t, out);
                }
            }
            for item in &rule.body {
                match item {
                    BodyItem::Lit { atom, .. } => {
                        if let PredRef::Var(v) = atom.pred {
                            out.insert(v);
                        }
                        for t in atom.all_args() {
                            collect_term_vars(t, out);
                        }
                    }
                    BodyItem::Cmp { lhs, rhs, .. } => {
                        collect_expr_vars(lhs, out);
                        collect_expr_vars(rhs, out);
                    }
                    BodyItem::Rest(v) => {
                        out.insert(*v);
                    }
                }
            }
        }
    }
}

fn collect_expr_vars(expr: &Expr, out: &mut HashSet<Symbol>) {
    match expr {
        Expr::Term(t) => collect_term_vars(t, out),
        Expr::BinOp(_, l, r) => {
            collect_expr_vars(l, out);
            collect_expr_vars(r, out);
        }
    }
}

/// Checks one rule for safety. `builtins` tells the checker which body
/// predicates are externally computed.
pub fn check_rule(rule: &Rule, builtins: &Builtins) -> Result<(), SafetyError> {
    // Variables bindable by positive literals anywhere in the body
    // (classic safety is position-independent).
    let mut positive: HashSet<Symbol> = HashSet::new();
    for item in &rule.body {
        positive_bindables(item, builtins, &mut positive);
    }

    // `X = <expr over positive vars>` also binds X; iterate to fixpoint so
    // chains of equalities work.
    let mut changed = true;
    while changed {
        changed = false;
        for item in &rule.body {
            let BodyItem::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = item
            else {
                continue;
            };
            for (target, source) in [(lhs, rhs), (rhs, lhs)] {
                let bindable_target = matches!(target, Expr::Term(Term::Var(_) | Term::Quote(_)));
                if !bindable_target {
                    continue;
                }
                let mut source_vars = HashSet::new();
                collect_expr_vars(source, &mut source_vars);
                if source_vars.is_subset(&positive) {
                    // The whole target becomes bindable (quote patterns
                    // bind all their variables when matched).
                    let mut target_vars = HashSet::new();
                    collect_expr_vars(target, &mut target_vars);
                    if !target_vars.is_subset(&positive) {
                        positive.extend(target_vars);
                        changed = true;
                    }
                }
            }
        }
    }

    // Negated literal variables must be positively bound.
    for item in &rule.body {
        if let BodyItem::Lit {
            negated: true,
            atom,
        } = item
        {
            let mut vars = HashSet::new();
            for t in atom.all_args() {
                collect_term_vars(t, &mut vars);
            }
            for v in vars {
                if !positive.contains(&v) {
                    return Err(SafetyError::UnsafeNegation {
                        var: v,
                        rule: rule.to_string(),
                        span: Span::UNKNOWN,
                    });
                }
            }
        }
    }

    // Comparisons other than binding-Eq need both sides bindable.
    for item in &rule.body {
        if let BodyItem::Cmp { op, lhs, rhs } = item {
            let mut vars = HashSet::new();
            collect_expr_vars(lhs, &mut vars);
            collect_expr_vars(rhs, &mut vars);
            let exempt = *op == CmpOp::Eq;
            if !exempt && !vars.is_subset(&positive) {
                return Err(SafetyError::UnboundComparison {
                    item: item.to_string(),
                    rule: rule.to_string(),
                    span: Span::UNKNOWN,
                });
            }
        }
    }

    // Aggregate variable must be bindable.
    if let Some(agg) = &rule.agg {
        if !positive.contains(&agg.over) {
            return Err(SafetyError::UnboundAggregate {
                var: agg.over,
                rule: rule.to_string(),
                span: Span::UNKNOWN,
            });
        }
        // The result variable is bound by the aggregation itself.
        positive.insert(agg.result);
    }

    // Head variables must be range-restricted — but only *top-level*
    // ones. Variables inside a quoted template are permitted to stay
    // unbound: template instantiation leaves them as object variables of
    // the generated code (§3.3; e.g. `del1` generates `active(R) <- …`
    // where `R` is quantified in the generated rule, not the generator).
    for head in &rule.heads {
        let mut vars = Vec::new();
        if let PredRef::Var(v) = head.pred {
            vars.push(v);
        }
        head.collect_vars(&mut vars);
        for v in vars {
            if !positive.contains(&v) {
                return Err(SafetyError::UnrestrictedHeadVar {
                    var: v,
                    rule: rule.to_string(),
                    span: Span::UNKNOWN,
                });
            }
        }
    }
    Ok(())
}

/// Like [`check_rule`], but stamps `span` onto any violation so the
/// error cites the rule's `line:col` in the original source.
pub fn check_rule_at(rule: &Rule, builtins: &Builtins, span: Span) -> Result<(), SafetyError> {
    check_rule(rule, builtins).map_err(|e| e.with_span(span))
}

/// Checks every rule of a program.
pub fn check_rules(rules: &[Rule], builtins: &Builtins) -> Result<(), SafetyError> {
    rules.iter().try_for_each(|r| check_rule(r, builtins))
}

/// Checks every rule of a parsed [`crate::ast::Program`], citing each
/// rule's recorded source span on failure.
pub fn check_program(
    program: &crate::ast::Program,
    builtins: &Builtins,
) -> Result<(), SafetyError> {
    program
        .rules
        .iter()
        .enumerate()
        .try_for_each(|(i, r)| check_rule_at(r, builtins, program.rule_span(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), SafetyError> {
        let program = parse_program(src).unwrap();
        check_rules(&program.rules, &Builtins::new())
    }

    #[test]
    fn safe_rules_pass() {
        assert!(check("p(X) <- q(X), !r(X).").is_ok());
        assert!(check("p(X,Y) <- q(X), r(Y), X != Y.").is_ok());
        assert!(check("p(X,Z) <- q(X), Z = X + 1.").is_ok());
        assert!(check("fail() <- access(P,O,M), !principal(P).").is_ok());
    }

    #[test]
    fn unrestricted_head_rejected() {
        let err = check("p(X,Y) <- q(X).").unwrap_err();
        assert!(matches!(err, SafetyError::UnrestrictedHeadVar { var, .. }
            if var.as_str() == "Y"));
    }

    #[test]
    fn unsafe_negation_rejected() {
        let err = check("p(X) <- q(X), !r(Y).").unwrap_err();
        assert!(matches!(err, SafetyError::UnsafeNegation { var, .. }
            if var.as_str() == "Y"));
    }

    #[test]
    fn comparison_needs_bound_vars() {
        let err = check("p(X) <- q(X), Y > 3.").unwrap_err();
        assert!(matches!(err, SafetyError::UnboundComparison { .. }));
    }

    #[test]
    fn eq_chain_binds() {
        assert!(check("p(X,Z) <- q(X), Y = X + 1, Z = Y * 2.").is_ok());
    }

    #[test]
    fn head_bound_via_eq() {
        assert!(check("p(Y) <- q(X), Y = X + 1.").is_ok());
        // But an Eq between two unbound vars binds nothing.
        assert!(check("p(Y) <- q(X), Y = Z.").is_err());
    }

    #[test]
    fn quote_pattern_binds_its_vars() {
        // Matching a quote pattern binds the meta-variables inside it.
        assert!(check("access(P,O) <- said([| access(P,O) |]).").is_ok());
        // Via equality against a bound quote too (del1 style).
        assert!(check("saidpred(P) <- said(R), R = [| P(T*) <- A*. |].").is_ok());
    }

    #[test]
    fn aggregate_variable_checked() {
        assert!(check("c(K,N) <- agg<<N = count(U)>> v(K,U).").is_ok());
        let err = check("c(K,N) <- agg<<N = count(Z)>> v(K,U).").unwrap_err();
        assert!(matches!(err, SafetyError::UnboundAggregate { .. }));
    }

    #[test]
    fn facts_are_safe() {
        assert!(check("p(a). q(1,\"s\").").is_ok());
    }

    #[test]
    fn violations_cite_line_and_col() {
        let program = parse_program("ok(X) <- q(X).\n  p(X,Y) <- q(X).").unwrap();
        let err = check_program(&program, &Builtins::new()).unwrap_err();
        assert_eq!(err.span(), crate::lexer::Span::new(2, 3));
        assert!(err.to_string().contains("at line 2:3"), "{err}");
        // The plain entry point keeps reporting, just without a position.
        let err = check_rules(&program.rules, &Builtins::new()).unwrap_err();
        assert!(!err.span().is_known());
    }
}
