//! Predicate dependency analysis and stratification.
//!
//! Negation and aggregation must not occur inside a recursive cycle
//! (stratified Datalog). We build the predicate dependency graph, find
//! strongly connected components, reject components containing a negative
//! or aggregating internal edge, and emit strata in topological order.

use crate::ast::{BodyItem, PredRef, Rule};
use crate::intern::Symbol;
use crate::lexer::Span;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Stratification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StratifyError {
    /// Predicates in the offending cycle.
    pub cycle: Vec<Symbol>,
    /// Whether the offending edge is negation (vs. aggregation).
    pub negation: bool,
    /// Source position of the rule carrying the offending edge
    /// (`Span::UNKNOWN` when rules were not parsed with spans).
    pub span: Span,
}

impl fmt::Display for StratifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.negation {
            "negation"
        } else {
            "aggregation"
        };
        let names: Vec<&str> = self.cycle.iter().map(|s| s.as_str()).collect();
        write!(
            f,
            "unstratifiable program: {kind} in recursive cycle {names:?}"
        )?;
        if self.span.is_known() {
            write!(f, " at line {}", self.span)?;
        }
        Ok(())
    }
}

impl std::error::Error for StratifyError {}

/// The result of stratification: for each predicate with rules, its
/// stratum index, and per-stratum rule lists.
#[derive(Clone, Debug, Default)]
pub struct Strata {
    /// Stratum index per head predicate.
    pub stratum_of: HashMap<Symbol, usize>,
    /// Rules grouped by stratum (indices into the input rule slice).
    pub rules_by_stratum: Vec<Vec<usize>>,
}

impl Strata {
    /// Number of strata.
    pub fn len(&self) -> usize {
        self.rules_by_stratum.len()
    }

    /// Whether there are no strata (no rules).
    pub fn is_empty(&self) -> bool {
        self.rules_by_stratum.is_empty()
    }

    /// The stratum of `pred` (predicates without rules — pure EDB — are
    /// stratum 0).
    pub fn stratum(&self, pred: Symbol) -> usize {
        self.stratum_of.get(&pred).copied().unwrap_or(0)
    }
}

/// Head predicates of a rule (concrete names only; quoted code inside
/// argument positions does not contribute dependencies — generated rules
/// are re-stratified when installed).
fn head_preds(rule: &Rule) -> impl Iterator<Item = Symbol> + '_ {
    rule.heads.iter().filter_map(|a| a.pred.name())
}

/// Body dependencies of a rule: `(pred, negative?)`. An aggregation makes
/// every body dependency negative (the head must be computed after its
/// body stratum is complete).
fn body_deps(rule: &Rule) -> Vec<(Symbol, bool)> {
    let aggregating = rule.agg.is_some();
    rule.body
        .iter()
        .filter_map(|item| match item {
            BodyItem::Lit { negated, atom } => match atom.pred {
                PredRef::Name(p) => Some((p, *negated || aggregating)),
                PredRef::Var(_) => None,
            },
            _ => None,
        })
        .collect()
}

/// Stratifies `rules`. Builtin predicates (per `is_builtin`) are excluded
/// from the dependency graph — they have no extension of their own.
pub fn stratify(
    rules: &[Rule],
    is_builtin: &dyn Fn(Symbol) -> bool,
) -> Result<Strata, StratifyError> {
    stratify_spanned(rules, &[], is_builtin)
}

/// Like [`stratify`], but `spans[i]` (where present) gives the source
/// position of `rules[i]`, so a stratification failure can cite the
/// `line:col` of the rule carrying the offending negative edge.
pub fn stratify_spanned(
    rules: &[Rule],
    spans: &[Span],
    is_builtin: &dyn Fn(Symbol) -> bool,
) -> Result<Strata, StratifyError> {
    // Collect IDB predicates.
    let mut idb: HashSet<Symbol> = HashSet::new();
    for rule in rules {
        idb.extend(head_preds(rule));
    }

    // Dependency edges head <- body among IDB predicates.
    // edge (from=body pred, to=head pred, negative, rule index)
    let mut edges: Vec<(Symbol, Symbol, bool, usize)> = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        for head in head_preds(rule) {
            for (dep, neg) in body_deps(rule) {
                if idb.contains(&dep) && !is_builtin(dep) {
                    edges.push((dep, head, neg, ri));
                }
            }
        }
    }

    // Compute strata with the classic iterative algorithm:
    // stratum(head) >= stratum(body), strictly greater on negative edges.
    let mut stratum: HashMap<Symbol, usize> = idb.iter().map(|&p| (p, 0)).collect();
    let max_rounds = idb.len().saturating_add(1);
    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > max_rounds {
            // A stratum exceeded |IDB|: some negative edge lies in a
            // cycle. Recover the offending cycle for the error message.
            return Err(find_bad_cycle(&edges, spans));
        }
        for &(from, to, neg, _) in &edges {
            let need = stratum[&from] + usize::from(neg);
            if stratum[&to] < need {
                stratum.insert(to, need);
                changed = true;
            }
        }
    }

    // Normalize stratum indices to 0..k and bucket rules. A rule's stratum
    // is the stratum of its head(s); multi-head rules take the max.
    let mut used: Vec<usize> = stratum.values().copied().collect();
    used.sort_unstable();
    used.dedup();
    let remap: HashMap<usize, usize> = used.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let stratum_of: HashMap<Symbol, usize> =
        stratum.into_iter().map(|(p, s)| (p, remap[&s])).collect();

    let n_strata = used.len().max(1);
    let mut rules_by_stratum: Vec<Vec<usize>> = vec![Vec::new(); n_strata];
    for (i, rule) in rules.iter().enumerate() {
        let s = head_preds(rule)
            .map(|p| stratum_of.get(&p).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        rules_by_stratum[s].push(i);
    }

    Ok(Strata {
        stratum_of,
        rules_by_stratum,
    })
}

/// Finds a cycle containing a negative edge, for error reporting.
fn find_bad_cycle(edges: &[(Symbol, Symbol, bool, usize)], spans: &[Span]) -> StratifyError {
    // Adjacency over all edges.
    let mut adj: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
    for &(from, to, _, _) in edges {
        adj.entry(from).or_default().push(to);
    }
    // For each negative edge (from, to), check whether `from` is reachable
    // back from `to`; if so the negative edge is in a cycle.
    for &(from, to, neg, ri) in edges {
        if !neg {
            continue;
        }
        // BFS from `to` looking for `from`.
        let mut queue = vec![to];
        let mut seen: HashSet<Symbol> = queue.iter().copied().collect();
        let mut parent: HashMap<Symbol, Symbol> = HashMap::new();
        while let Some(node) = queue.pop() {
            if node == from {
                // Reconstruct path to report the cycle.
                let mut cycle = vec![from];
                let mut cur = from;
                while cur != to {
                    cur = parent[&cur];
                    cycle.push(cur);
                }
                cycle.reverse();
                return StratifyError {
                    cycle,
                    negation: true,
                    span: spans.get(ri).copied().unwrap_or(Span::UNKNOWN),
                };
            }
            for &next in adj.get(&node).into_iter().flatten() {
                if seen.insert(next) {
                    parent.insert(next, node);
                    queue.push(next);
                }
            }
        }
    }
    // Fall back to a generic error (should not happen).
    StratifyError {
        cycle: Vec::new(),
        negation: true,
        span: Span::UNKNOWN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn strata_of(src: &str) -> Result<Strata, StratifyError> {
        let program = parse_program(src).unwrap();
        stratify(&program.rules, &|_| false)
    }

    #[test]
    fn positive_recursion_single_stratum() {
        let s = strata_of(
            "reachable(X,Y) <- edge(X,Y).\n\
             reachable(X,Z) <- reachable(X,Y), edge(Y,Z).",
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.stratum(Symbol::intern("reachable")), 0);
        assert_eq!(s.rules_by_stratum[0].len(), 2);
    }

    #[test]
    fn negation_forces_higher_stratum() {
        let s = strata_of(
            "reach(X,Y) <- edge(X,Y).\n\
             reach(X,Z) <- reach(X,Y), edge(Y,Z).\n\
             unreach(X,Y) <- node(X), node(Y), !reach(X,Y).",
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.stratum(Symbol::intern("unreach")) > s.stratum(Symbol::intern("reach")));
    }

    #[test]
    fn aggregation_forces_higher_stratum() {
        let s = strata_of(
            "vote(U,C) <- ballot(U,C).\n\
             tally(C,N) <- agg<<N = count(U)>> vote(U,C).",
        )
        .unwrap();
        assert!(s.stratum(Symbol::intern("tally")) > s.stratum(Symbol::intern("vote")));
    }

    #[test]
    fn negation_in_cycle_rejected() {
        let err = strata_of(
            "p(X) <- q(X), !r(X).\n\
             r(X) <- p(X).",
        )
        .unwrap_err();
        assert!(err.negation);
        assert!(!err.cycle.is_empty());
    }

    #[test]
    fn aggregation_in_cycle_rejected() {
        let err = strata_of(
            "score(U,N) <- agg<<N = count(V)>> endorse(V,U).\n\
             endorse(V,U) <- score(U,N), friend(V,U), N > 0.",
        )
        .unwrap_err();
        assert!(!err.cycle.is_empty());
    }

    #[test]
    fn multiple_strata_chain() {
        let s = strata_of(
            "a(X) <- base(X).\n\
             b(X) <- a(X), !blocked(X).\n\
             blocked(X) <- a(X), bad(X).\n\
             c(X) <- b(X), !b2(X).\n\
             b2(X) <- blocked(X).",
        )
        .unwrap();
        let st = |n: &str| s.stratum(Symbol::intern(n));
        assert!(st("b") > st("blocked"));
        // c depends positively on b (same stratum allowed) and negatively
        // on b2 (strictly above).
        assert!(st("c") >= st("b"));
        assert!(st("c") > st("b2"));
    }

    #[test]
    fn edb_is_stratum_zero() {
        let s = strata_of("p(X) <- q(X).").unwrap();
        assert_eq!(s.stratum(Symbol::intern("q")), 0);
    }

    #[test]
    fn facts_only_program() {
        let s = strata_of("p(a). p(b).").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rules_by_stratum[0].len(), 2);
    }

    #[test]
    fn cycle_error_cites_span() {
        let program = parse_program(
            "r(X) <- p(X).\n\
             p(X) <- q(X), !r(X).",
        )
        .unwrap();
        let err = stratify_spanned(&program.rules, &program.rule_spans, &|_| false).unwrap_err();
        assert!(err.negation);
        // The rule carrying the negative edge is on line 2.
        assert_eq!(err.span, Span::new(2, 1));
        assert!(err.to_string().contains("at line 2:1"), "{err}");
        // The unspanned entry point still works, with no position.
        let err = stratify(&program.rules, &|_| false).unwrap_err();
        assert!(!err.span.is_known());
    }
}
