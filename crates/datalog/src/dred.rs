//! Incremental deletion: the delete-and-rederive (DRed) algorithm.
//!
//! §3.1 of the paper: "When predicate data is modified, the active rules
//! are incrementally recomputed" — including removals. DRed (Gupta,
//! Mumick, Subrahmanian) handles deletion in three phases:
//!
//! 1. **Over-delete**: mark everything transitively derived *using* a
//!    deleted tuple (an over-approximation — alternative derivations are
//!    ignored for now);
//! 2. **Remove** the marked tuples;
//! 3. **Re-derive**: tuples with surviving alternative derivations are
//!    put back, and their consequences propagate semi-naively.
//!
//! Supported fragment: positive rules (builtins and comparisons allowed).
//! Callers with negation or aggregation fall back to full recomputation —
//! the same policy the incremental-addition path uses.

use crate::ast::{BodyItem, Rule};
use crate::builtins::Builtins;
use crate::db::{Database, Tuple};
use crate::eval::{Engine, EvalError, EvalStats};
use crate::intern::Symbol;
use crate::unify::Bindings;
use std::collections::{HashMap, HashSet};

/// Outcome counters for one retraction.
#[derive(Clone, Copy, Debug, Default)]
pub struct DredStats {
    /// Tuples removed in the over-deletion phase (including the
    /// retracted ones).
    pub overdeleted: usize,
    /// Tuples restored by re-derivation.
    pub rederived: usize,
    /// Underlying evaluation statistics from the propagation phase.
    pub eval: EvalStats,
}

/// Retracts `retracted` base tuples from `db` and incrementally repairs
/// every derived conclusion. `rules` must be free of negation and
/// aggregation (callers check and fall back to full recomputation).
pub fn retract(
    rules: &[Rule],
    db: &mut Database,
    builtins: &Builtins,
    retracted: &[(Symbol, Tuple)],
) -> Result<DredStats, EvalError> {
    for rule in rules {
        let nonmono = rule.agg.is_some()
            || rule
                .body
                .iter()
                .any(|i| matches!(i, BodyItem::Lit { negated: true, .. }));
        if nonmono {
            return Err(EvalError::TypeError {
                message: format!(
                    "DRed requires a positive program; rule uses negation/aggregation: {rule}"
                ),
            });
        }
    }
    let engine = Engine::new(rules, builtins);

    // Phase 1: over-delete.
    let mut doomed: HashMap<Symbol, HashSet<Tuple>> = HashMap::new();
    let mut frontier: Vec<(Symbol, Tuple)> = Vec::new();
    for (pred, tuple) in retracted {
        if db.contains(*pred, tuple) && doomed.entry(*pred).or_default().insert(tuple.clone()) {
            frontier.push((*pred, tuple.clone()));
        }
    }
    while let Some((pred, tuple)) = frontier.pop() {
        for rule in rules {
            for (idx, item) in rule.body.iter().enumerate() {
                let BodyItem::Lit {
                    negated: false,
                    atom,
                } = item
                else {
                    continue;
                };
                if atom.pred.name() != Some(pred) {
                    continue;
                }
                // Consequences of this rule with body literal `idx`
                // pinned to the doomed tuple (other literals evaluated
                // against the pre-deletion database, per DRed).
                for (head_pred, head_tuple) in eval_rule_pinned(&engine, rule, db, idx, &tuple)? {
                    if db.contains(head_pred, &head_tuple)
                        && doomed
                            .entry(head_pred)
                            .or_default()
                            .insert(head_tuple.clone())
                    {
                        frontier.push((head_pred, head_tuple));
                    }
                }
            }
        }
    }

    // Phase 2: remove.
    let mut stats = DredStats::default();
    for (pred, tuples) in &doomed {
        stats.overdeleted += db.relation_mut(*pred).remove_tuples(tuples);
    }

    // Phase 3: re-derive. A doomed tuple survives if some rule instance
    // still concludes it from the post-deletion database.
    let mut seeds: HashMap<Symbol, usize> = HashMap::new();
    for (pred, tuples) in &doomed {
        for tuple in tuples {
            if rederivable(&engine, rules, db, *pred, tuple)? {
                let mark = db.count(*pred);
                if db.insert(*pred, tuple.clone()) {
                    stats.rederived += 1;
                    seeds.entry(*pred).or_insert(mark);
                }
            }
        }
    }
    let seed_vec: Vec<(Symbol, usize)> = seeds.into_iter().collect();
    if !seed_vec.is_empty() {
        stats.eval = engine.run_incremental(db, &seed_vec)?;
        stats.rederived += stats.eval.derived;
    }
    Ok(stats)
}

/// Evaluates `rule` with body literal `idx` restricted to exactly
/// `tuple`, returning the concluded head tuples.
fn eval_rule_pinned(
    engine: &Engine<'_>,
    rule: &Rule,
    db: &Database,
    idx: usize,
    tuple: &[crate::value::Value],
) -> Result<Vec<(Symbol, Tuple)>, EvalError> {
    let mut envs = vec![Bindings::new()];
    for (i, item) in rule.body.iter().enumerate() {
        if envs.is_empty() {
            return Ok(Vec::new());
        }
        if i == idx {
            let BodyItem::Lit { atom, .. } = item else {
                unreachable!("pinned literal is positive");
            };
            let mut next = Vec::new();
            for env in &envs {
                next.extend(env.match_tuple(atom, tuple));
            }
            envs = next;
        } else {
            envs = engine.eval_single_item(rule, item, envs, db)?;
        }
    }
    let mut out = Vec::new();
    for env in &envs {
        for head in &rule.heads {
            let pred = head.pred.name().expect("positive program");
            let head_tuple: Option<Tuple> = head.all_args().map(|t| env.resolve(t)).collect();
            if let Some(t) = head_tuple {
                out.push((pred, t));
            }
        }
    }
    Ok(out)
}

/// Whether some rule instance still concludes `pred(tuple)` over the
/// current database.
fn rederivable(
    engine: &Engine<'_>,
    rules: &[Rule],
    db: &Database,
    pred: Symbol,
    tuple: &[crate::value::Value],
) -> Result<bool, EvalError> {
    for rule in rules {
        for head in &rule.heads {
            if head.pred.name() != Some(pred) || head.arity() != tuple.len() {
                continue;
            }
            if rule.body.is_empty() {
                // Fact-rule concluding exactly this tuple: it survives.
                if !Bindings::new().match_tuple(head, tuple).is_empty() && head.is_ground() {
                    return Ok(true);
                }
                continue;
            }
            for env in Bindings::new().match_tuple(head, tuple) {
                let mut envs = vec![env];
                for item in &rule.body {
                    if envs.is_empty() {
                        break;
                    }
                    envs = engine.eval_single_item(rule, item, envs, db)?;
                }
                if !envs.is_empty() {
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::value::Value;

    const TC: &str = "reach(X,Y) <- edge(X,Y).\nreach(X,Z) <- reach(X,Y), edge(Y,Z).";

    fn edge(a: &str, b: &str) -> Tuple {
        vec![Value::sym(a), Value::sym(b)]
    }

    fn setup(edges: &[(&str, &str)]) -> (Vec<Rule>, Database, Builtins) {
        let program = parse_program(TC).unwrap();
        let builtins = Builtins::new();
        let mut db = Database::new();
        let edge_p = Symbol::intern("edge");
        for (a, b) in edges {
            db.insert(edge_p, edge(a, b));
        }
        Engine::new(&program.rules, &builtins).run(&mut db).unwrap();
        (program.rules, db, builtins)
    }

    /// Reference: full recomputation over the reduced edge set.
    fn reference(edges: &[(&str, &str)]) -> Database {
        let program = parse_program(TC).unwrap();
        let builtins = Builtins::new();
        let mut db = Database::new();
        let edge_p = Symbol::intern("edge");
        for (a, b) in edges {
            db.insert(edge_p, edge(a, b));
        }
        Engine::new(&program.rules, &builtins).run(&mut db).unwrap();
        db
    }

    fn same_reach(a: &Database, b: &Database) -> bool {
        let reach = Symbol::intern("reach");
        if a.count(reach) != b.count(reach) {
            return false;
        }
        a.relation(reach)
            .map(|r| r.iter().all(|t| b.contains(reach, t)))
            .unwrap_or(true)
    }

    #[test]
    fn chain_break_removes_downstream() {
        let (rules, mut db, builtins) = setup(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let edge_p = Symbol::intern("edge");
        let stats = retract(&rules, &mut db, &builtins, &[(edge_p, edge("b", "c"))]).unwrap();
        assert!(stats.overdeleted > 0);
        let expected = reference(&[("a", "b"), ("c", "d")]);
        assert!(same_reach(&db, &expected), "reach mismatch after retract");
    }

    #[test]
    fn alternative_path_rederives() {
        // Two paths a->c: direct and through b. Deleting the direct edge
        // must keep reach(a,c) via re-derivation.
        let (rules, mut db, builtins) = setup(&[("a", "b"), ("b", "c"), ("a", "c")]);
        let edge_p = Symbol::intern("edge");
        let stats = retract(&rules, &mut db, &builtins, &[(edge_p, edge("a", "c"))]).unwrap();
        assert!(stats.rederived > 0, "reach(a,c) must be re-derived");
        assert!(db.contains(Symbol::intern("reach"), &edge("a", "c")));
        let expected = reference(&[("a", "b"), ("b", "c")]);
        assert!(same_reach(&db, &expected));
    }

    #[test]
    fn cycle_deletion() {
        let (rules, mut db, builtins) = setup(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let edge_p = Symbol::intern("edge");
        retract(&rules, &mut db, &builtins, &[(edge_p, edge("c", "a"))]).unwrap();
        let expected = reference(&[("a", "b"), ("b", "c")]);
        assert!(same_reach(&db, &expected));
    }

    #[test]
    fn retract_absent_tuple_is_noop() {
        let (rules, mut db, builtins) = setup(&[("a", "b")]);
        let before = db.total_tuples();
        let stats = retract(
            &rules,
            &mut db,
            &builtins,
            &[(Symbol::intern("edge"), edge("x", "y"))],
        )
        .unwrap();
        assert_eq!(stats.overdeleted, 0);
        assert_eq!(db.total_tuples(), before);
    }

    #[test]
    fn multiple_retractions_at_once() {
        let (rules, mut db, builtins) = setup(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]);
        let edge_p = Symbol::intern("edge");
        retract(
            &rules,
            &mut db,
            &builtins,
            &[(edge_p, edge("a", "b")), (edge_p, edge("c", "d"))],
        )
        .unwrap();
        let expected = reference(&[("b", "c"), ("d", "e")]);
        assert!(same_reach(&db, &expected));
    }

    #[test]
    fn negation_rejected() {
        let program = parse_program("p(X) <- q(X), !r(X).").unwrap();
        let builtins = Builtins::new();
        let mut db = Database::new();
        let err = retract(
            &program.rules,
            &mut db,
            &builtins,
            &[(Symbol::intern("q"), vec![Value::sym("a")])],
        );
        assert!(err.is_err());
    }
}
