//! Provenance: explaining how a tuple was derived.
//!
//! §7 of the paper: "we are currently adding provenance support to
//! LBTrust. In addition to reasoning about delegation and chains of
//! trust, provenance is useful for analyzing derivations of security
//! policies, runtime verification, and dynamic type checking."
//!
//! [`explain`] reconstructs a proof tree for a derived tuple over a
//! *materialized* database: it finds a rule and a satisfying binding
//! whose premises are all present (recursively explained), memoizing
//! sub-proofs and refusing cycles. Base facts (no deriving rule
//! instance, or present before evaluation) are leaves.

use crate::ast::{BodyItem, Rule};
use crate::builtins::Builtins;
use crate::db::{Database, Tuple};
use crate::eval::Engine;
use crate::intern::Symbol;
use crate::unify::Bindings;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A proof tree for one tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Proof {
    /// The tuple is a base fact (EDB, asserted, or builtin-produced).
    Fact {
        /// Predicate.
        pred: Symbol,
        /// The tuple.
        tuple: Tuple,
    },
    /// The tuple is the head of a rule instance.
    Derived {
        /// Predicate.
        pred: Symbol,
        /// The tuple.
        tuple: Tuple,
        /// The deriving rule, printed canonically.
        rule: String,
        /// Proofs of the positive body premises, in body order.
        premises: Vec<Proof>,
    },
}

impl Proof {
    /// The concluded `(pred, tuple)`.
    pub fn conclusion(&self) -> (Symbol, &Tuple) {
        match self {
            Proof::Fact { pred, tuple } | Proof::Derived { pred, tuple, .. } => (*pred, tuple),
        }
    }

    /// Depth of the proof tree (a fact has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Proof::Fact { .. } => 1,
            Proof::Derived { premises, .. } => {
                1 + premises.iter().map(Proof::depth).max().unwrap_or(0)
            }
        }
    }

    /// Renders the tree with indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Proof::Fact { pred, tuple } => {
                out.push_str(&format!("{pad}{pred}{} [fact]\n", fmt_tuple(tuple)));
            }
            Proof::Derived {
                pred,
                tuple,
                rule,
                premises,
            } => {
                out.push_str(&format!("{pad}{pred}{} [via {rule}]\n", fmt_tuple(tuple)));
                for p in premises {
                    p.render_into(out, indent + 1);
                }
            }
        }
    }
}

fn fmt_tuple(tuple: &[Value]) -> String {
    let inner: Vec<String> = tuple.iter().map(ToString::to_string).collect();
    format!("({})", inner.join(","))
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Explains `pred(tuple)` over a materialized `db`. Returns `None` when
/// the tuple is not present. Tuples present but derivable by no rule
/// instance are reported as facts.
pub fn explain(
    rules: &[Rule],
    db: &Database,
    builtins: &Builtins,
    pred: Symbol,
    tuple: &[Value],
) -> Option<Proof> {
    if !db.contains(pred, tuple) {
        return None;
    }
    let mut ctx = Explainer {
        rules,
        db,
        builtins,
        memo: HashMap::new(),
        in_progress: HashSet::new(),
    };
    Some(ctx.prove(pred, tuple))
}

struct Explainer<'a> {
    rules: &'a [Rule],
    db: &'a Database,
    builtins: &'a Builtins,
    memo: HashMap<(Symbol, Tuple), Proof>,
    in_progress: HashSet<(Symbol, Tuple)>,
}

impl<'a> Explainer<'a> {
    fn prove(&mut self, pred: Symbol, tuple: &[Value]) -> Proof {
        let key = (pred, tuple.to_vec());
        if let Some(p) = self.memo.get(&key) {
            return p.clone();
        }
        // Cycle guard: while proving this tuple, treat re-occurrences as
        // facts (the well-founded derivation exists because the fixpoint
        // derived it; we just avoid infinite regress).
        if !self.in_progress.insert(key.clone()) {
            return Proof::Fact {
                pred,
                tuple: tuple.to_vec(),
            };
        }

        let proof = self.find_rule_instance(pred, tuple).unwrap_or(Proof::Fact {
            pred,
            tuple: tuple.to_vec(),
        });
        self.in_progress.remove(&key);
        self.memo.insert(key, proof.clone());
        proof
    }

    /// Finds some rule instance concluding `pred(tuple)` whose premises
    /// hold in the database.
    fn find_rule_instance(&mut self, pred: Symbol, tuple: &[Value]) -> Option<Proof> {
        let engine = Engine::new(self.rules, self.builtins);
        for rule in self.rules {
            if rule.is_pattern() || rule.agg.is_some() {
                continue;
            }
            for head in &rule.heads {
                if head.pred.name() != Some(pred) || head.arity() != tuple.len() {
                    continue;
                }
                if rule.body.is_empty() {
                    // A fact-rule concluding exactly this tuple.
                    let envs = Bindings::new().match_tuple(head, tuple);
                    if !envs.is_empty() && head.is_ground() {
                        return None; // it IS a base fact
                    }
                    continue;
                }
                // Bind the head against the tuple, then check the body.
                for env in Bindings::new().match_tuple(head, tuple) {
                    let mut envs = vec![env];
                    for item in &rule.body {
                        if envs.is_empty() {
                            break;
                        }
                        envs = engine
                            .eval_single_item(rule, item, envs, self.db)
                            .unwrap_or_default();
                    }
                    let Some(witness) = envs.into_iter().next() else {
                        continue;
                    };
                    // Premises: positive, non-builtin literals.
                    let mut premises = Vec::new();
                    let mut ok = true;
                    for item in &rule.body {
                        let BodyItem::Lit {
                            negated: false,
                            atom,
                        } = item
                        else {
                            continue;
                        };
                        let Some(p) = atom.pred.name() else {
                            continue;
                        };
                        if self.builtins.contains(p) {
                            continue;
                        }
                        let premise_tuple: Option<Tuple> =
                            atom.all_args().map(|t| witness.resolve(t)).collect();
                        match premise_tuple {
                            Some(t) if self.db.contains(p, &t) => {
                                premises.push(self.prove(p, &t));
                            }
                            _ => {
                                // Premise bound to code or missing:
                                // cannot reconstruct through this witness.
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        return Some(Proof::Derived {
                            pred,
                            tuple: tuple.to_vec(),
                            rule: rule.to_string(),
                            premises,
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn setup(src: &str) -> (Vec<Rule>, Database, Builtins) {
        let program = parse_program(src).unwrap();
        let builtins = Builtins::new();
        let mut db = Database::new();
        Engine::new(&program.rules, &builtins).run(&mut db).unwrap();
        (program.rules, db, builtins)
    }

    fn t(parts: &[&str]) -> Tuple {
        parts.iter().map(|p| Value::sym(p)).collect()
    }

    #[test]
    fn base_fact_is_a_leaf() {
        let (rules, db, builtins) = setup("edge(a,b). reach(X,Y) <- edge(X,Y).");
        let proof = explain(
            &rules,
            &db,
            &builtins,
            Symbol::intern("edge"),
            &t(&["a", "b"]),
        )
        .expect("present");
        assert_eq!(
            proof,
            Proof::Fact {
                pred: Symbol::intern("edge"),
                tuple: t(&["a", "b"]),
            }
        );
    }

    #[test]
    fn one_step_derivation() {
        let (rules, db, builtins) = setup("edge(a,b). reach(X,Y) <- edge(X,Y).");
        let proof = explain(
            &rules,
            &db,
            &builtins,
            Symbol::intern("reach"),
            &t(&["a", "b"]),
        )
        .expect("present");
        match &proof {
            Proof::Derived { rule, premises, .. } => {
                assert!(rule.contains("reach(X,Y)"), "{rule}");
                assert_eq!(premises.len(), 1);
                assert_eq!(premises[0].conclusion().0, Symbol::intern("edge"));
            }
            other => panic!("expected derivation, got {other:?}"),
        }
        assert_eq!(proof.depth(), 2);
    }

    #[test]
    fn recursive_derivation_chain() {
        let (rules, db, builtins) = setup(
            "edge(a,b). edge(b,c). edge(c,d).\n\
             reach(X,Y) <- edge(X,Y).\n\
             reach(X,Z) <- reach(X,Y), edge(Y,Z).",
        );
        let proof = explain(
            &rules,
            &db,
            &builtins,
            Symbol::intern("reach"),
            &t(&["a", "d"]),
        )
        .expect("present");
        // a->d needs at least 3 levels: reach(a,d) <- reach(a,c) <- reach(a,b).
        assert!(
            proof.depth() >= 3,
            "depth {} too shallow:\n{proof}",
            proof.depth()
        );
        let rendered = proof.render();
        assert!(rendered.contains("reach(a,d)"), "{rendered}");
        assert!(rendered.contains("[fact]"), "{rendered}");
    }

    #[test]
    fn absent_tuple_unexplained() {
        let (rules, db, builtins) = setup("edge(a,b). reach(X,Y) <- edge(X,Y).");
        assert!(explain(
            &rules,
            &db,
            &builtins,
            Symbol::intern("reach"),
            &t(&["b", "a"])
        )
        .is_none());
    }

    #[test]
    fn cyclic_graph_terminates() {
        let (rules, db, builtins) = setup(
            "edge(a,b). edge(b,a).\n\
             reach(X,Y) <- edge(X,Y).\n\
             reach(X,Z) <- reach(X,Y), edge(Y,Z).",
        );
        // reach(a,a) exists via the cycle; explanation must terminate.
        let proof = explain(
            &rules,
            &db,
            &builtins,
            Symbol::intern("reach"),
            &t(&["a", "a"]),
        )
        .expect("present");
        assert!(proof.depth() >= 2);
    }

    #[test]
    fn negation_premises_skipped_but_checked() {
        let (rules, db, builtins) = setup(
            "candidate(a). candidate(b). banned(b).\n\
             ok(X) <- candidate(X), !banned(X).",
        );
        let proof =
            explain(&rules, &db, &builtins, Symbol::intern("ok"), &t(&["a"])).expect("present");
        match proof {
            Proof::Derived { premises, .. } => {
                // Only the positive premise appears.
                assert_eq!(premises.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }
}
