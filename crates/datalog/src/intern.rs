//! Global string interning.
//!
//! Predicate names, constants, and variable names are interned into
//! [`Symbol`]s so that tuples compare and hash as machine words. The
//! interner is a process-wide table: principals in the simulated
//! distributed system exchange rules as values, and a shared symbol space
//! keeps that exchange cheap without a per-message rename step.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Two `Symbol`s are equal iff their strings are.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, Symbol>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its symbol.
    pub fn intern(s: &str) -> Symbol {
        {
            let guard = interner().read().expect("interner poisoned");
            if let Some(&sym) = guard.map.get(s) {
                return sym;
            }
        }
        let mut guard = interner().write().expect("interner poisoned");
        if let Some(&sym) = guard.map.get(s) {
            return sym;
        }
        // Interned strings live for the process lifetime; leaking gives us
        // `&'static str` keys without unsafe code.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = Symbol(guard.strings.len() as u32);
        guard.strings.push(leaked);
        guard.map.insert(leaked, sym);
        sym
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").strings[self.0 as usize]
    }

    /// The raw index (stable for the life of the process).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("access");
        let b = Symbol::intern("access");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "access");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("alice"), Symbol::intern("bob"));
    }

    #[test]
    fn display_matches_string() {
        let s = Symbol::intern("reachable");
        assert_eq!(s.to_string(), "reachable");
        assert_eq!(format!("{s:?}"), "\"reachable\"");
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| Symbol::intern(&format!("sym_{}", (t * 100 + i) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same string interned on different threads yields the same symbol.
        for row in &all {
            for (i, sym) in row.iter().enumerate() {
                assert_eq!(sym.as_str(), format!("sym_{}", i % 50));
            }
        }
    }
}
