//! Tabled top-down (goal-directed) resolution.
//!
//! "Most practical access control languages, including Binder, utilize a
//! top-down (or backward-chaining) evaluation strategy. Specific requests
//! are made as goals, which are then resolved against the security
//! policies, hence minimizing the disclosure of sensitive information"
//! (§5.1 of the paper). This module provides that strategy directly: an
//! OLDT-style resolver that memoizes answers per subgoal call pattern and
//! iterates to fixpoint, so recursive policies (delegation chains,
//! reachability) terminate.
//!
//! Supported fragment: single-head rules; negation only on predicates
//! without rules (EDB), fully bound at evaluation time; builtins and
//! comparisons; no aggregation.

use crate::ast::{Atom, BodyItem, PredRef, Rule};
use crate::builtins::Builtins;
use crate::db::{Database, Tuple};
use crate::eval::{Engine, EvalError};
use crate::intern::Symbol;
use crate::unify::Bindings;
use crate::value::Value;

use std::collections::{HashMap, HashSet};

/// A memo-table key: the predicate plus its bound-argument pattern.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CallKey {
    pred: Symbol,
    pattern: Vec<Option<Value>>,
}

/// Statistics from a top-down query (for the ablation harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct TopdownStats {
    /// Distinct subgoal call patterns tabled.
    pub calls: usize,
    /// Fixpoint passes over the call table.
    pub passes: usize,
    /// Total answers across all tables.
    pub answers: usize,
}

/// Resolves `query` against `rules` and the extensional `db`, returning
/// all matching tuples of the query predicate.
pub fn query_topdown(
    rules: &[Rule],
    db: &Database,
    query: &Atom,
    builtins: &Builtins,
) -> Result<(Vec<Tuple>, TopdownStats), EvalError> {
    let mut solver = Solver {
        rules,
        db,
        builtins,
        // Reuse the bottom-up engine's expression/compare machinery for
        // builtins via a tiny embedded engine below.
        tables: HashMap::new(),
        stats: TopdownStats::default(),
    };
    let key = solver.call_key(query, &Bindings::new());
    solver.solve_to_fixpoint(key.clone())?;
    let answers = solver.tables[&key].iter().cloned().collect();
    let mut stats = solver.stats;
    stats.calls = solver.tables.len();
    stats.answers = solver.tables.values().map(HashSet::len).sum();
    Ok((answers, stats))
}

struct Solver<'a> {
    rules: &'a [Rule],
    db: &'a Database,
    builtins: &'a Builtins,
    tables: HashMap<CallKey, HashSet<Tuple>>,
    stats: TopdownStats,
}

impl<'a> Solver<'a> {
    fn call_key(&self, atom: &Atom, env: &Bindings) -> CallKey {
        CallKey {
            pred: atom.pred.name().expect("concrete goal"),
            pattern: atom.all_args().map(|t| env.resolve(t)).collect(),
        }
    }

    /// Ensures `root` and every subgoal it reaches are tabled, iterating
    /// until no table grows (naive tabling fixpoint — sound and complete
    /// for stratified-free positive Datalog).
    fn solve_to_fixpoint(&mut self, root: CallKey) -> Result<(), EvalError> {
        self.tables.entry(root.clone()).or_default();
        loop {
            self.stats.passes += 1;
            // Progress means either a table grew or a new subgoal table
            // appeared (it still needs its first resolution pass).
            let before = (
                self.tables.len(),
                self.tables.values().map(HashSet::len).sum::<usize>(),
            );
            // Snapshot keys: new subgoals found during a pass are resolved
            // in the next pass.
            let keys: Vec<CallKey> = self.tables.keys().cloned().collect();
            for key in keys {
                self.resolve_call(&key)?;
            }
            let after = (
                self.tables.len(),
                self.tables.values().map(HashSet::len).sum::<usize>(),
            );
            if after == before {
                return Ok(());
            }
        }
    }

    /// One resolution pass for a single tabled call.
    fn resolve_call(&mut self, key: &CallKey) -> Result<(), EvalError> {
        // EDB answers.
        let mut found: Vec<Tuple> = Vec::new();
        if let Some(rel) = self.db.relation(key.pred) {
            for tuple in rel.iter() {
                if pattern_matches(&key.pattern, tuple) {
                    found.push(tuple.clone());
                }
            }
        }
        // Rule answers.
        let matching: Vec<&Rule> = self
            .rules
            .iter()
            .filter(|r| r.heads.len() == 1 && r.heads[0].pred.name() == Some(key.pred))
            .collect();
        for rule in matching {
            if rule.agg.is_some() {
                return Err(EvalError::TypeError {
                    message: format!("top-down evaluation does not support aggregation: {rule}"),
                });
            }
            let head = &rule.heads[0];
            if head.arity() != key.pattern.len() {
                continue;
            }
            // Unify the call pattern with the head.
            let mut env = Bindings::new();
            let mut ok = true;
            for (term, slot) in head.all_args().zip(key.pattern.iter()) {
                if let Some(v) = slot {
                    let extensions = env.match_value(term, v);
                    match extensions.into_iter().next() {
                        Some(next) => env = next,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            // Resolve the body left to right.
            let envs = self.solve_body(rule, &rule.body, vec![env])?;
            for env in envs {
                let tuple: Option<Tuple> = head.all_args().map(|t| env.resolve(t)).collect();
                if let Some(t) = tuple {
                    if pattern_matches(&key.pattern, &t) {
                        found.push(t);
                    }
                }
            }
        }
        let table = self.tables.get_mut(key).expect("registered");
        for t in found {
            table.insert(t);
        }
        Ok(())
    }

    fn solve_body(
        &mut self,
        rule: &Rule,
        body: &[BodyItem],
        mut envs: Vec<Bindings>,
    ) -> Result<Vec<Bindings>, EvalError> {
        for item in body {
            if envs.is_empty() {
                break;
            }
            match item {
                BodyItem::Lit {
                    negated: false,
                    atom,
                } => {
                    let pred = match atom.pred {
                        PredRef::Name(p) => p,
                        PredRef::Var(_) => {
                            return Err(EvalError::PatternRule {
                                rule: rule.to_string(),
                            })
                        }
                    };
                    if self.builtins.contains(pred) {
                        let mut next = Vec::new();
                        for env in &envs {
                            let args: Vec<Option<Value>> =
                                atom.all_args().map(|t| env.resolve(t)).collect();
                            let tuples = self
                                .builtins
                                .invoke(pred, &args)
                                .expect("checked contains")?;
                            for tuple in tuples {
                                next.extend(env.match_tuple(atom, &tuple));
                            }
                        }
                        envs = next;
                    } else if self.has_rules(pred) {
                        // Tabled subgoal.
                        let mut next = Vec::new();
                        for env in &envs {
                            let key = self.call_key(atom, env);
                            let answers: Vec<Tuple> = self
                                .tables
                                .entry(key)
                                .or_default()
                                .iter()
                                .cloned()
                                .collect();
                            for t in answers {
                                next.extend(env.match_tuple(atom, &t));
                            }
                        }
                        envs = next;
                    } else {
                        // Pure EDB scan.
                        let mut next = Vec::new();
                        if let Some(rel) = self.db.relation(pred) {
                            for env in &envs {
                                for tuple in rel.iter() {
                                    next.extend(env.match_tuple(atom, tuple));
                                }
                            }
                        }
                        envs = next;
                    }
                }
                BodyItem::Lit {
                    negated: true,
                    atom,
                } => {
                    let pred = atom.pred.name().ok_or_else(|| EvalError::PatternRule {
                        rule: rule.to_string(),
                    })?;
                    if self.has_rules(pred) {
                        return Err(EvalError::TypeError {
                            message: format!(
                                "top-down evaluation only negates EDB predicates: {rule}"
                            ),
                        });
                    }
                    envs.retain(|env| {
                        let ground: Option<Tuple> =
                            atom.all_args().map(|t| env.resolve(t)).collect();
                        match ground {
                            Some(t) => !self.db.contains(pred, &t),
                            None => false,
                        }
                    });
                }
                BodyItem::Cmp { .. } => {
                    // Delegate comparison semantics to the bottom-up
                    // engine's item evaluator via a throwaway instance.
                    let engine = Engine::new(std::slice::from_ref(rule), self.builtins);
                    let empty = Database::new();
                    envs = engine.eval_single_item(rule, item, envs, &empty)?;
                }
                BodyItem::Rest(_) => {
                    return Err(EvalError::PatternRule {
                        rule: rule.to_string(),
                    })
                }
            }
        }
        Ok(envs)
    }

    fn has_rules(&self, pred: Symbol) -> bool {
        self.rules
            .iter()
            .any(|r| r.heads.iter().any(|h| h.pred.name() == Some(pred)))
    }
}

fn pattern_matches(pattern: &[Option<Value>], tuple: &[Value]) -> bool {
    pattern.len() == tuple.len()
        && pattern
            .iter()
            .zip(tuple.iter())
            .all(|(p, v)| p.as_ref().is_none_or(|pv| pv == v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_atom, parse_program};

    fn edb(pairs: &[(&str, &[&str])]) -> Database {
        let mut db = Database::new();
        for (pred, tuple) in pairs {
            db.insert(
                Symbol::intern(pred),
                tuple.iter().map(|v| Value::sym(v)).collect(),
            );
        }
        db
    }

    #[test]
    fn simple_goal() {
        let program = parse_program("grant(P,O) <- owns(P,O).").unwrap();
        let db = edb(&[("owns", &["alice", "f1"][..]), ("owns", &["bob", "f2"][..])]);
        let query = parse_atom("grant(alice, X)").unwrap();
        let (answers, _) = query_topdown(&program.rules, &db, &query, &Builtins::new()).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][1], Value::sym("f1"));
    }

    #[test]
    fn recursive_goal_terminates() {
        let program = parse_program(
            "reach(X,Y) <- edge(X,Y).\n\
             reach(X,Z) <- edge(X,Y), reach(Y,Z).",
        )
        .unwrap();
        // A cycle: a -> b -> c -> a.
        let db = edb(&[
            ("edge", &["a", "b"][..]),
            ("edge", &["b", "c"][..]),
            ("edge", &["c", "a"][..]),
        ]);
        let query = parse_atom("reach(a, X)").unwrap();
        let (answers, stats) =
            query_topdown(&program.rules, &db, &query, &Builtins::new()).unwrap();
        let mut got: Vec<String> = answers.iter().map(|t| t[1].to_string()).collect();
        got.sort();
        assert_eq!(got, vec!["a", "b", "c"]);
        assert!(stats.passes >= 2);
    }

    #[test]
    fn matches_bottom_up() {
        let program = parse_program(
            "access(P,O,M) <- owns(P,O), mode(M).\n\
             access(P,O,M) <- delegated(Q,P), access(Q,O,M).",
        )
        .unwrap();
        let db = edb(&[
            ("owns", &["alice", "f1"][..]),
            ("mode", &["read"][..]),
            ("delegated", &["alice", "carol"][..]),
            ("delegated", &["carol", "dave"][..]),
        ]);
        let builtins = Builtins::new();
        let mut full = db.clone();
        Engine::new(&program.rules, &builtins)
            .run(&mut full)
            .unwrap();
        let query = parse_atom("access(dave, X, Y)").unwrap();
        let (answers, _) = query_topdown(&program.rules, &db, &query, &builtins).unwrap();
        let expected: Vec<&Tuple> = full
            .relation(Symbol::intern("access"))
            .unwrap()
            .iter()
            .filter(|t| t[0] == Value::sym("dave"))
            .collect();
        assert_eq!(answers.len(), expected.len());
        for t in expected {
            assert!(answers.contains(t));
        }
    }

    #[test]
    fn comparison_in_body() {
        let program = parse_program("bigpair(X,Y) <- n(X), n(Y), X != Y.").unwrap();
        let mut db = Database::new();
        for v in ["a", "b"] {
            db.insert(Symbol::intern("n"), vec![Value::sym(v)]);
        }
        let query = parse_atom("bigpair(X, Y)").unwrap();
        let (answers, _) = query_topdown(&program.rules, &db, &query, &Builtins::new()).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn negated_edb() {
        let program = parse_program("ok(X) <- candidate(X), !banned(X).").unwrap();
        let db = edb(&[
            ("candidate", &["a"][..]),
            ("candidate", &["b"][..]),
            ("banned", &["b"][..]),
        ]);
        let query = parse_atom("ok(X)").unwrap();
        let (answers, _) = query_topdown(&program.rules, &db, &query, &Builtins::new()).unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn negated_idb_rejected() {
        let program = parse_program(
            "p(X) <- q(X), !r(X).\n\
             r(X) <- s(X).",
        )
        .unwrap();
        let db = edb(&[("q", &["a"][..])]);
        let query = parse_atom("p(X)").unwrap();
        assert!(query_topdown(&program.rules, &db, &query, &Builtins::new()).is_err());
    }

    #[test]
    fn ground_goal_yes_no() {
        let program = parse_program(
            "reach(X,Y) <- edge(X,Y).\n\
             reach(X,Z) <- edge(X,Y), reach(Y,Z).",
        )
        .unwrap();
        let db = edb(&[("edge", &["a", "b"][..]), ("edge", &["b", "c"][..])]);
        let builtins = Builtins::new();
        let (yes, _) = query_topdown(
            &program.rules,
            &db,
            &parse_atom("reach(a, c)").unwrap(),
            &builtins,
        )
        .unwrap();
        assert_eq!(yes.len(), 1);
        let (no, _) = query_topdown(
            &program.rules,
            &db,
            &parse_atom("reach(c, a)").unwrap(),
            &builtins,
        )
        .unwrap();
        assert!(no.is_empty());
    }
}
