//! Disjunctive-normal-form conversion for rule bodies and constraints.
//!
//! The paper (§2.1): "an arbitrary nesting of negation, conjunction, and
//! disjunction may be used in the body of a rule. Such a rule may be
//! translated into strict Datalog rules by (1) translating the body into
//! Disjunctive Normal Form (DNF), and (2) splitting the original rule into
//! a separate rule for each resulting alternative."

use crate::ast::{BodyItem, CmpOp, Formula};

/// Errors that can arise during normalization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnfError {
    /// A body-rest meta-variable (`A*`) appeared under a negation, which
    /// has no DNF reading.
    NegatedRest,
}

impl std::fmt::Display for DnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnfError::NegatedRest => write!(f, "cannot negate a body-rest meta-variable"),
        }
    }
}

impl std::error::Error for DnfError {}

/// Converts a formula to DNF: a disjunction of conjunctions of body items.
/// The outer `Vec` is the disjunction; each inner `Vec` becomes one rule
/// body.
pub fn to_dnf(formula: &Formula) -> Result<Vec<Vec<BodyItem>>, DnfError> {
    dnf(formula, false)
}

/// Core conversion with a negation context flag (push-negation-inward
/// fused with distribution).
fn dnf(formula: &Formula, negated: bool) -> Result<Vec<Vec<BodyItem>>, DnfError> {
    match (formula, negated) {
        (Formula::Item(item), false) => Ok(vec![vec![item.clone()]]),
        (Formula::Item(item), true) => Ok(vec![vec![negate_item(item)?]]),
        (Formula::Not(inner), neg) => dnf(inner, !neg),
        // ¬(A ∧ B) = ¬A ∨ ¬B and ¬(A ∨ B) = ¬A ∧ ¬B: swap the connective.
        (Formula::And(parts), false) | (Formula::Or(parts), true) => {
            // Conjunction: cross product of the parts' DNFs.
            let mut acc: Vec<Vec<BodyItem>> = vec![Vec::new()];
            for part in parts {
                let part_dnf = dnf(part, negated)?;
                let mut next = Vec::with_capacity(acc.len() * part_dnf.len());
                for left in &acc {
                    for right in &part_dnf {
                        let mut merged = left.clone();
                        merged.extend(right.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
        (Formula::Or(parts), false) | (Formula::And(parts), true) => {
            // Disjunction: concatenate the parts' DNFs.
            let mut acc = Vec::new();
            for part in parts {
                acc.extend(dnf(part, negated)?);
            }
            Ok(acc)
        }
    }
}

/// Negates a single body item.
fn negate_item(item: &BodyItem) -> Result<BodyItem, DnfError> {
    Ok(match item {
        BodyItem::Lit { negated, atom } => BodyItem::Lit {
            negated: !negated,
            atom: atom.clone(),
        },
        BodyItem::Cmp { op, lhs, rhs } => BodyItem::Cmp {
            op: negate_cmp(*op),
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
        BodyItem::Rest(_) => return Err(DnfError::NegatedRest),
    })
}

/// The complement of a comparison operator.
pub fn negate_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term};

    fn item(p: &str) -> Formula {
        Formula::Item(BodyItem::pos(Atom::new(p, vec![Term::var("X")])))
    }

    fn names(dnf: &[Vec<BodyItem>]) -> Vec<Vec<String>> {
        dnf.iter()
            .map(|conj| conj.iter().map(|i| i.to_string()).collect())
            .collect()
    }

    #[test]
    fn single_item() {
        let d = to_dnf(&item("p")).unwrap();
        assert_eq!(names(&d), vec![vec!["p(X)".to_string()]]);
    }

    #[test]
    fn disjunction_splits() {
        let f = Formula::Or(vec![item("p"), item("q")]);
        let d = to_dnf(&f).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(
            names(&d),
            vec![vec!["p(X)".to_string()], vec!["q(X)".to_string()]]
        );
    }

    #[test]
    fn and_over_or_distributes() {
        // p ∧ (q ∨ r) → (p ∧ q) ∨ (p ∧ r)
        let f = Formula::And(vec![item("p"), Formula::Or(vec![item("q"), item("r")])]);
        let d = to_dnf(&f).unwrap();
        assert_eq!(
            names(&d),
            vec![
                vec!["p(X)".to_string(), "q(X)".to_string()],
                vec!["p(X)".to_string(), "r(X)".to_string()],
            ]
        );
    }

    #[test]
    fn de_morgan_and() {
        // ¬(p ∧ q) → ¬p ∨ ¬q
        let f = Formula::Not(Box::new(Formula::And(vec![item("p"), item("q")])));
        let d = to_dnf(&f).unwrap();
        assert_eq!(
            names(&d),
            vec![vec!["!p(X)".to_string()], vec!["!q(X)".to_string()]]
        );
    }

    #[test]
    fn de_morgan_or() {
        // ¬(p ∨ q) → ¬p ∧ ¬q
        let f = Formula::Not(Box::new(Formula::Or(vec![item("p"), item("q")])));
        let d = to_dnf(&f).unwrap();
        assert_eq!(
            names(&d),
            vec![vec!["!p(X)".to_string(), "!q(X)".to_string()]]
        );
    }

    #[test]
    fn double_negation() {
        let f = Formula::Not(Box::new(Formula::Not(Box::new(item("p")))));
        assert_eq!(to_dnf(&f).unwrap(), to_dnf(&item("p")).unwrap());
    }

    #[test]
    fn negated_comparison_flips_op() {
        use crate::ast::{CmpOp, Expr};
        let f = Formula::Not(Box::new(Formula::Item(BodyItem::Cmp {
            op: CmpOp::Lt,
            lhs: Expr::var("X"),
            rhs: Expr::var("Y"),
        })));
        let d = to_dnf(&f).unwrap();
        assert_eq!(names(&d), vec![vec!["X >= Y".to_string()]]);
    }

    #[test]
    fn negated_rest_is_error() {
        let f = Formula::Not(Box::new(Formula::Item(BodyItem::Rest(
            crate::intern::Symbol::intern("A"),
        ))));
        assert_eq!(to_dnf(&f), Err(DnfError::NegatedRest));
    }

    #[test]
    fn empty_and_is_truth() {
        let d = to_dnf(&Formula::truth()).unwrap();
        assert_eq!(d, vec![Vec::<BodyItem>::new()]);
    }
}
