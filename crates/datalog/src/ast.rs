//! Abstract syntax for the LBTrust Datalog dialect.
//!
//! One [`Rule`] type serves three roles, mirroring the paper's quoted code
//! terms (§3.3):
//!
//! 1. **Concrete rule** — no sequence variables, no functor variables;
//!    installed into a workspace and evaluated.
//! 2. **Pattern** — appears as a quote term in a rule *body* (or the left
//!    side of a meta-constraint); its variables are meta-variables that
//!    bind when matched against a concrete quoted rule, `P(T*)` functor
//!    and sequence variables included.
//! 3. **Template** — appears as a quote term in a rule *head*; bound
//!    meta-variables are substituted ("unquoted in-place"), unbound ones
//!    remain as object-level variables of the generated code.

use crate::intern::Symbol;
use crate::lexer::Span;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Reference to a predicate: a concrete name, or a functor meta-variable
/// (only meaningful inside quoted code).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredRef {
    /// A concrete predicate name.
    Name(Symbol),
    /// A functor meta-variable, as in `P(T*)`.
    Var(Symbol),
}

impl PredRef {
    /// The concrete name, if any.
    pub fn name(&self) -> Option<Symbol> {
        match self {
            PredRef::Name(s) => Some(*s),
            PredRef::Var(_) => None,
        }
    }
}

impl fmt::Display for PredRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredRef::Name(s) | PredRef::Var(s) => write!(f, "{s}"),
        }
    }
}

/// A term: an argument position in an atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable (`X`). Inside quoted code this doubles as a
    /// meta-variable.
    Var(Symbol),
    /// A ground value.
    Val(Value),
    /// A sequence meta-variable (`T*`), standing for zero or more terms.
    /// Only valid inside quoted code, as the final argument.
    SeqVar(Symbol),
    /// A quoted rule used as a pattern or template.
    Quote(Arc<Rule>),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Convenience constructor for a symbol constant.
    pub fn sym(name: &str) -> Term {
        Term::Val(Value::sym(name))
    }

    /// Convenience constructor for an integer constant.
    pub fn int(v: i64) -> Term {
        Term::Val(Value::Int(v))
    }

    /// The ground value, if this term is one.
    pub fn as_val(&self) -> Option<&Value> {
        match self {
            Term::Val(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the term contains no variables (sequence vars and quotes
    /// with variables count as non-ground; quotes are ground as *data*
    /// only via [`Value::Quote`]).
    pub fn is_ground(&self) -> bool {
        matches!(self, Term::Val(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Val(v) => write!(f, "{v}"),
            Term::SeqVar(v) => write!(f, "{v}*"),
            Term::Quote(r) => write!(f, "[| {r} |]"),
        }
    }
}

/// An atom: a predicate applied to terms, with optional partition-key
/// arguments (`export[U2](me,R,S)` has key `[U2]`, §3.4 currying).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate (or functor meta-variable).
    pub pred: PredRef,
    /// Partition-key arguments (the `[..]` part), usually empty.
    pub key_args: Vec<Term>,
    /// Ordinary arguments.
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an un-partitioned atom on a named predicate.
    pub fn new(pred: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: PredRef::Name(Symbol::intern(pred)),
            key_args: Vec::new(),
            args,
        }
    }

    /// Builds a partitioned atom `pred[key_args](args)`.
    pub fn keyed(pred: &str, key_args: Vec<Term>, args: Vec<Term>) -> Atom {
        Atom {
            pred: PredRef::Name(Symbol::intern(pred)),
            key_args,
            args,
        }
    }

    /// All argument terms, key arguments first — the storage layout of the
    /// underlying un-curried relation.
    pub fn all_args(&self) -> impl Iterator<Item = &Term> {
        self.key_args.iter().chain(self.args.iter())
    }

    /// Total arity (keys + ordinary arguments).
    pub fn arity(&self) -> usize {
        self.key_args.len() + self.args.len()
    }

    /// Whether every argument is a ground value.
    pub fn is_ground(&self) -> bool {
        self.all_args().all(Term::is_ground)
    }

    /// Collects the distinct variables (not sequence vars) in order of
    /// first occurrence into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        for t in self.all_args() {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        // A bare meta-variable standing for a whole atom prints without
        // parentheses, exactly as it parses.
        if matches!(self.pred, PredRef::Var(_)) && self.key_args.is_empty() && self.args.is_empty()
        {
            return Ok(());
        }
        if !self.key_args.is_empty() {
            write!(f, "[")?;
            for (i, t) in self.key_args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, "]")?;
        }
        if !self.args.is_empty() || self.key_args.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Comparison operators usable in built-in body items.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=` — unifying equality (binds an unbound side when possible).
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Arithmetic operators in built-in expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
    /// `%`
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        })
    }
}

/// An arithmetic/term expression inside a built-in.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A bare term.
    Term(Term),
    /// A binary arithmetic operation over integers.
    BinOp(ArithOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: a variable expression.
    pub fn var(name: &str) -> Expr {
        Expr::Term(Term::var(name))
    }

    /// Collects the distinct variables in `self` into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Expr::Term(Term::Var(v)) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Term(_) => {}
            Expr::BinOp(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::BinOp(op, l, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

/// One item in a rule body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BodyItem {
    /// A possibly negated atom.
    Lit {
        /// Whether the atom is negated (`!`).
        negated: bool,
        /// The atom.
        atom: Atom,
    },
    /// A built-in comparison / unification, e.g. `N >= 3` or `M = N - 1`.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left-hand expression.
        lhs: Expr,
        /// Right-hand expression.
        rhs: Expr,
    },
    /// A body-rest meta-variable (`A*`): zero or more further literals.
    /// Only valid inside quoted code, as the final body item.
    Rest(Symbol),
}

impl BodyItem {
    /// Convenience: a positive literal.
    pub fn pos(atom: Atom) -> BodyItem {
        BodyItem::Lit {
            negated: false,
            atom,
        }
    }

    /// Convenience: a negated literal.
    pub fn neg(atom: Atom) -> BodyItem {
        BodyItem::Lit {
            negated: true,
            atom,
        }
    }

    /// The atom, if this is a (possibly negated) literal.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            BodyItem::Lit { atom, .. } => Some(atom),
            _ => None,
        }
    }

    /// Collects distinct variables in order of first occurrence.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            BodyItem::Lit { atom, .. } => atom.collect_vars(out),
            BodyItem::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            BodyItem::Rest(_) => {}
        }
    }
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Lit { negated, atom } => {
                if *negated {
                    write!(f, "!")?;
                }
                write!(f, "{atom}")
            }
            BodyItem::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            BodyItem::Rest(v) => write!(f, "{v}*"),
        }
    }
}

/// Aggregation functions (the paper uses `count` for unweighted thresholds
/// and `total` for weighted ones, §4.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    /// Number of distinct bindings of the aggregated variable.
    Count,
    /// Sum of the aggregated variable (integers).
    Total,
    /// Minimum of the aggregated variable.
    Min,
    /// Maximum of the aggregated variable.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::Total => "total",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        })
    }
}

/// An aggregation specification: `agg<<N = count(U)>>`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AggSpec {
    /// The variable receiving the aggregate result (`N`).
    pub result: Symbol,
    /// The aggregation function.
    pub func: AggFunc,
    /// The aggregated variable (`U`).
    pub over: Symbol,
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agg<<{} = {}({})>>", self.result, self.func, self.over)
    }
}

/// A rule: one or more head atoms implied by a body.
///
/// A *fact* is a rule with a ground head and an empty body. Multi-atom
/// heads (used by the paper's file-system demo rule `dfs2`) assert every
/// head atom for each satisfying binding.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// Head atoms (usually exactly one).
    pub heads: Vec<Atom>,
    /// Body items; empty for facts.
    pub body: Vec<BodyItem>,
    /// Optional aggregation wrapping the body.
    pub agg: Option<AggSpec>,
}

impl Rule {
    /// Builds a single-head rule.
    pub fn new(head: Atom, body: Vec<BodyItem>) -> Rule {
        Rule {
            heads: vec![head],
            body,
            agg: None,
        }
    }

    /// Builds a fact (ground head, empty body).
    pub fn fact(head: Atom) -> Rule {
        Rule::new(head, Vec::new())
    }

    /// The single head, panicking if the rule has several (most call
    /// sites are post-normalization where this is an invariant).
    pub fn head(&self) -> &Atom {
        assert_eq!(self.heads.len(), 1, "rule has multiple heads: {self}");
        &self.heads[0]
    }

    /// Whether this rule is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
            && self.agg.is_none()
            && self.heads.len() == 1
            && self.heads[0].is_ground()
    }

    /// Whether the rule contains meta-constructs (sequence variables,
    /// body-rest variables, or functor variables) anywhere outside a
    /// nested quote — i.e. whether it is a pattern rather than a concrete
    /// rule.
    pub fn is_pattern(&self) -> bool {
        fn atom_is_pat(a: &Atom) -> bool {
            matches!(a.pred, PredRef::Var(_)) || a.all_args().any(|t| matches!(t, Term::SeqVar(_)))
        }
        self.heads.iter().any(atom_is_pat)
            || self.body.iter().any(|item| match item {
                BodyItem::Lit { atom, .. } => atom_is_pat(atom),
                BodyItem::Rest(_) => true,
                BodyItem::Cmp { .. } => false,
            })
    }

    /// Content-addressed identifier: a stable 64-bit FNV-1a hash of the
    /// canonical printed form. Used to deduplicate generated rules and as
    /// the `rule(R)` entity in the meta-model.
    pub fn content_id(&self) -> u64 {
        let text = self.to_string();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Collects the distinct variables of the rule (head first, then
    /// body) in order of first occurrence.
    pub fn collect_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for h in &self.heads {
            h.collect_vars(&mut out);
        }
        for item in &self.body {
            item.collect_vars(&mut out);
        }
        out
    }

    /// Replaces every occurrence of the symbol constant `from` with `to`,
    /// including inside quoted code (terms and constants alike). This is
    /// how the `me` keyword is resolved to the local principal when a
    /// rule is installed into a workspace (§4.1 of the paper).
    pub fn substitute_sym(&self, from: Symbol, to: Symbol) -> Rule {
        Rule {
            heads: self
                .heads
                .iter()
                .map(|a| a.substitute_sym(from, to))
                .collect(),
            body: self
                .body
                .iter()
                .map(|item| match item {
                    BodyItem::Lit { negated, atom } => BodyItem::Lit {
                        negated: *negated,
                        atom: atom.substitute_sym(from, to),
                    },
                    BodyItem::Cmp { op, lhs, rhs } => BodyItem::Cmp {
                        op: *op,
                        lhs: expr_substitute_sym(lhs, from, to),
                        rhs: expr_substitute_sym(rhs, from, to),
                    },
                    BodyItem::Rest(v) => BodyItem::Rest(*v),
                })
                .collect(),
            agg: self.agg.clone(),
        }
    }
}

impl Atom {
    /// See [`Rule::substitute_sym`].
    pub fn substitute_sym(&self, from: Symbol, to: Symbol) -> Atom {
        Atom {
            pred: self.pred,
            key_args: self
                .key_args
                .iter()
                .map(|t| term_substitute_sym(t, from, to))
                .collect(),
            args: self
                .args
                .iter()
                .map(|t| term_substitute_sym(t, from, to))
                .collect(),
        }
    }
}

fn term_substitute_sym(term: &Term, from: Symbol, to: Symbol) -> Term {
    match term {
        Term::Val(v) => Term::Val(value_substitute_sym(v, from, to)),
        Term::Quote(r) => Term::Quote(Arc::new(r.substitute_sym(from, to))),
        other => other.clone(),
    }
}

fn value_substitute_sym(value: &Value, from: Symbol, to: Symbol) -> Value {
    match value {
        Value::Sym(s) if *s == from => Value::Sym(to),
        Value::Quote(r) => Value::Quote(Arc::new(r.substitute_sym(from, to))),
        other => other.clone(),
    }
}

fn expr_substitute_sym(expr: &Expr, from: Symbol, to: Symbol) -> Expr {
    match expr {
        Expr::Term(t) => Expr::Term(term_substitute_sym(t, from, to)),
        Expr::BinOp(op, l, r) => Expr::BinOp(
            *op,
            Box::new(expr_substitute_sym(l, from, to)),
            Box::new(expr_substitute_sym(r, from, to)),
        ),
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, h) in self.heads.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        if self.body.is_empty() && self.agg.is_none() {
            return write!(f, ".");
        }
        write!(f, " <- ")?;
        if let Some(agg) = &self.agg {
            write!(f, "{agg} ")?;
        }
        for (i, item) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, ".")
    }
}

/// A body formula with arbitrary nesting of conjunction, disjunction and
/// negation — the surface form of constraints and complex rule bodies,
/// normalized to DNF before evaluation (§2.1 of the paper).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// A single body item.
    Item(BodyItem),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// `true` — the empty conjunction.
    pub fn truth() -> Formula {
        Formula::And(Vec::new())
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Item(i) => write!(f, "{i}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Formula::Not(sub) => write!(f, "!{sub}"),
        }
    }
}

/// A schema constraint `F1 -> F2.` — logically `fail() <- F1, !(F2).`
/// (§3.2). An empty `requires` side (`p(X) ->.`) is a pure declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// The premise (left of `->`), a conjunction of body items.
    pub body: Vec<BodyItem>,
    /// The requirement (right of `->`).
    pub requires: Formula,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, item) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " -> {}.", self.requires)
    }
}

/// A parsed program: rules plus constraints, in source order.
///
/// Source positions live in side tables parallel to `rules` /
/// `constraints` (rather than inside [`Rule`], whose equality and
/// content identity are position-independent). Programs built by hand
/// may leave the tables empty; [`Program::rule_span`] then reports
/// [`Span::UNKNOWN`].
#[derive(Clone, Default, Debug)]
pub struct Program {
    /// The rules (facts included).
    pub rules: Vec<Rule>,
    /// The schema constraints.
    pub constraints: Vec<Constraint>,
    /// `line:col` of each rule's statement, parallel to `rules`.
    pub rule_spans: Vec<Span>,
    /// `line:col` of each constraint's statement, parallel to `constraints`.
    pub constraint_spans: Vec<Span>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Appends a rule with its source span.
    pub fn push_rule(&mut self, rule: Rule, span: Span) {
        // Keep the side table aligned even if earlier rules were pushed
        // directly onto `rules` without spans.
        self.rule_spans.resize(self.rules.len(), Span::UNKNOWN);
        self.rules.push(rule);
        self.rule_spans.push(span);
    }

    /// Appends a constraint with its source span.
    pub fn push_constraint(&mut self, constraint: Constraint, span: Span) {
        self.constraint_spans
            .resize(self.constraints.len(), Span::UNKNOWN);
        self.constraints.push(constraint);
        self.constraint_spans.push(span);
    }

    /// The source span of `rules[i]` (`Span::UNKNOWN` if unrecorded).
    pub fn rule_span(&self, i: usize) -> Span {
        self.rule_spans.get(i).copied().unwrap_or(Span::UNKNOWN)
    }

    /// The source span of `constraints[i]` (`Span::UNKNOWN` if unrecorded).
    pub fn constraint_span(&self, i: usize) -> Span {
        self.constraint_spans
            .get(i)
            .copied()
            .unwrap_or(Span::UNKNOWN)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.constraints {
            writeln!(f, "{c}")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rule() -> Rule {
        // access(P,O,read) <- good(P), !banned(P).
        Rule::new(
            Atom::new(
                "access",
                vec![Term::var("P"), Term::var("O"), Term::sym("read")],
            ),
            vec![
                BodyItem::pos(Atom::new("good", vec![Term::var("P")])),
                BodyItem::neg(Atom::new("banned", vec![Term::var("P")])),
            ],
        )
    }

    #[test]
    fn display_rule() {
        assert_eq!(
            sample_rule().to_string(),
            "access(P,O,read) <- good(P), !banned(P)."
        );
    }

    #[test]
    fn display_fact() {
        let f = Rule::fact(Atom::new("good", vec![Term::sym("alice")]));
        assert_eq!(f.to_string(), "good(alice).");
        assert!(f.is_fact());
        assert!(!sample_rule().is_fact());
    }

    #[test]
    fn display_keyed_atom() {
        let a = Atom::keyed(
            "export",
            vec![Term::var("U2")],
            vec![Term::sym("me"), Term::var("R"), Term::var("S")],
        );
        assert_eq!(a.to_string(), "export[U2](me,R,S)");
        assert_eq!(a.arity(), 4);
    }

    #[test]
    fn display_agg_rule() {
        let r = Rule {
            heads: vec![Atom::new(
                "creditOKCount",
                vec![Term::var("C"), Term::var("N")],
            )],
            body: vec![BodyItem::pos(Atom::new(
                "creditOK",
                vec![Term::var("U"), Term::var("C")],
            ))],
            agg: Some(AggSpec {
                result: Symbol::intern("N"),
                func: AggFunc::Count,
                over: Symbol::intern("U"),
            }),
        };
        assert_eq!(
            r.to_string(),
            "creditOKCount(C,N) <- agg<<N = count(U)>> creditOK(U,C)."
        );
    }

    #[test]
    fn content_id_stable_and_distinct() {
        assert_eq!(sample_rule().content_id(), sample_rule().content_id());
        let other = Rule::fact(Atom::new("good", vec![Term::sym("alice")]));
        assert_ne!(sample_rule().content_id(), other.content_id());
    }

    #[test]
    fn pattern_detection() {
        assert!(!sample_rule().is_pattern());
        // P(T*) <- A*.
        let pat = Rule {
            heads: vec![Atom {
                pred: PredRef::Var(Symbol::intern("P")),
                key_args: vec![],
                args: vec![Term::SeqVar(Symbol::intern("T"))],
            }],
            body: vec![BodyItem::Rest(Symbol::intern("A"))],
            agg: None,
        };
        assert!(pat.is_pattern());
    }

    #[test]
    fn collect_vars_order() {
        let vars = sample_rule().collect_vars();
        let names: Vec<&str> = vars.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["P", "O"]);
    }

    #[test]
    fn substitute_me() {
        let me = Symbol::intern("me");
        let alice = Symbol::intern("alice");
        let r = crate::parser::parse_rule(
            "says(me,Z,[| reachable(Z,D). |]) <- neighbor(me,Z), says(W,me,[| reachable(me,D). |]).",
        )
        .unwrap();
        let subst = r.substitute_sym(me, alice);
        let text = subst.to_string();
        assert!(!text.contains("me"), "me still present: {text}");
        // Inside the nested quote too.
        assert!(text.contains("reachable(alice,D)"), "{text}");
        // Variables named Me would be untouched (symbols only).
        assert_eq!(
            crate::parser::parse_rule("p(X) <- q(X).")
                .unwrap()
                .substitute_sym(me, alice)
                .to_string(),
            "p(X) <- q(X)."
        );
    }

    #[test]
    fn constraint_display() {
        let c = Constraint {
            body: vec![BodyItem::pos(Atom::new(
                "access",
                vec![Term::var("P"), Term::var("O"), Term::var("M")],
            ))],
            requires: Formula::And(vec![
                Formula::Item(BodyItem::pos(Atom::new("principal", vec![Term::var("P")]))),
                Formula::Item(BodyItem::pos(Atom::new("object", vec![Term::var("O")]))),
            ]),
        };
        assert_eq!(c.to_string(), "access(P,O,M) -> (principal(P), object(O)).");
    }
}
