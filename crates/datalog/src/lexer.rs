//! Tokenizer for the LBTrust Datalog dialect.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Lowercase-initial identifier: constants and predicate names.
    /// May contain interior `:` (e.g. `message:fname`, `rsa:3:c1ebab5d`).
    Ident(String),
    /// Uppercase-initial identifier: a variable / meta-variable.
    UIdent(String),
    /// `_` — anonymous variable.
    Underscore,
    /// Integer literal.
    Int(i64),
    /// String literal (double-quoted, `\\`-escaped).
    Str(String),
    /// Byte-string literal `#hexdigits`.
    Bytes(Vec<u8>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `[|` — open quote.
    LQuote,
    /// `|]` — close quote.
    RQuote,
    /// `<<`
    LAngles,
    /// `>>`
    RAngles,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `!`
    Bang,
    /// `<-` or `:-`
    ImpliedBy,
    /// `->`
    Implies,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `@` — used by the SeNDlog dialect for export addressing.
    At,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) | Token::UIdent(s) => write!(f, "{s}"),
            Token::Underscore => write!(f, "_"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Bytes(b) => {
                write!(f, "#")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LQuote => write!(f, "[|"),
            Token::RQuote => write!(f, "|]"),
            Token::LAngles => write!(f, "<<"),
            Token::RAngles => write!(f, ">>"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semi => write!(f, ";"),
            Token::Bang => write!(f, "!"),
            Token::ImpliedBy => write!(f, "<-"),
            Token::Implies => write!(f, "->"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::At => write!(f, "@"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (byte offset within the line).
    pub col: usize,
}

impl Spanned {
    /// The `line:col` position of this token.
    pub fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }
}

/// A `line:col` source position (both 1-based). `Span::UNKNOWN` (0:0)
/// marks synthesized code with no source location.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// 1-based source line (0 = unknown).
    pub line: usize,
    /// 1-based source column (0 = unknown).
    pub col: usize,
}

impl Span {
    /// A span for code with no source location (e.g. generated rules).
    pub const UNKNOWN: Span = Span { line: 0, col: 0 };

    /// Builds a span from a 1-based line and column.
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }

    /// True when this span carries a real position.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "?:?")
        }
    }
}

/// A lexical error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at line {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`. Comments run from `//` to end of line; whitespace is
/// insignificant.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    // Byte index of the first character of the current line; the column of
    // the token starting at `i` is `i - line_start + 1`.
    let mut line_start = 0;
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                token: $tok,
                line,
                col: i - line_start + 1,
            });
            i += $len;
        }};
    }
    macro_rules! col {
        () => {
            i - line_start + 1
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = bytes.get(i + 1).map(|&b| b as char);
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if next == Some('/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            '[' if next == Some('|') => push!(Token::LQuote, 2),
            '[' => push!(Token::LBracket, 1),
            ']' => push!(Token::RBracket, 1),
            '|' if next == Some(']') => push!(Token::RQuote, 2),
            ',' => push!(Token::Comma, 1),
            '.' => push!(Token::Dot, 1),
            ';' => push!(Token::Semi, 1),
            '!' if next == Some('=') => push!(Token::Ne, 2),
            '!' => push!(Token::Bang, 1),
            '<' if next == Some('-') => push!(Token::ImpliedBy, 2),
            '<' if next == Some('=') => push!(Token::Le, 2),
            '<' if next == Some('<') => push!(Token::LAngles, 2),
            '<' => push!(Token::Lt, 1),
            '>' if next == Some('=') => push!(Token::Ge, 2),
            '>' if next == Some('>') => push!(Token::RAngles, 2),
            '>' => push!(Token::Gt, 1),
            '-' if next == Some('>') => push!(Token::Implies, 2),
            '-' => push!(Token::Minus, 1),
            ':' if next == Some('-') => push!(Token::ImpliedBy, 2),
            '=' => push!(Token::Eq, 1),
            '+' => push!(Token::Plus, 1),
            '*' => push!(Token::Star, 1),
            '/' => push!(Token::Slash, 1),
            '%' => push!(Token::Percent, 1),
            '@' => push!(Token::At, 1),
            '_' if next.is_none_or(|n| !is_ident_char(n)) => push!(Token::Underscore, 1),
            '"' => {
                let (s, len) = lex_string(&src[i..], line, col!())?;
                push!(Token::Str(s), len);
            }
            '#' => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] as char).is_ascii_hexdigit() {
                    j += 1;
                }
                let hex = &src[i + 1..j];
                // A bare `#` is the empty byte string (e.g. the signature
                // field of a plaintext-transfer message).
                if !hex.len().is_multiple_of(2) {
                    return Err(LexError {
                        message: format!("invalid byte literal '#{hex}'"),
                        line,
                        col: col!(),
                    });
                }
                let b = (0..hex.len())
                    .step_by(2)
                    .map(|k| u8::from_str_radix(&hex[k..k + 2], 16).expect("hex digits"))
                    .collect();
                push!(Token::Bytes(b), j - i);
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let text = &src[i..j];
                let v: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal '{text}' out of range"),
                    line,
                    col: col!(),
                })?;
                push!(Token::Int(v), j - i);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if is_ident_char(cj) {
                        j += 1;
                    } else if cj == ':'
                        && bytes.get(j + 1).is_some_and(|&b| is_ident_char(b as char))
                    {
                        // Interior colon: `message:fname`, `rsa:3:c1ebab5d`.
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = src[i..j].to_string();
                let tok = if c.is_ascii_uppercase() {
                    Token::UIdent(text)
                } else {
                    Token::Ident(text)
                };
                push!(tok, j - i);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    line,
                    col: col!(),
                })
            }
        }
    }
    Ok(out)
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '\''
}

/// Lexes a double-quoted string starting at `src[0] == '"'`. Returns the
/// unescaped contents and the byte length consumed (including quotes).
fn lex_string(src: &str, line: usize, col: usize) -> Result<(String, usize), LexError> {
    let bytes = src.as_bytes();
    let mut out = String::new();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] as char {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let esc = bytes.get(i + 1).map(|&b| b as char).ok_or(LexError {
                    message: "unterminated escape".into(),
                    line,
                    col,
                })?;
                out.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    '\\' => '\\',
                    '"' => '"',
                    other => {
                        return Err(LexError {
                            message: format!("unknown escape '\\{other}'"),
                            line,
                            col,
                        })
                    }
                });
                i += 2;
            }
            '\n' => {
                return Err(LexError {
                    message: "unterminated string".into(),
                    line,
                    col,
                })
            }
            c => {
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    Err(LexError {
        message: "unterminated string".into(),
        line,
        col,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn simple_rule() {
        assert_eq!(
            toks("access(P,O,read) <- good(P)."),
            vec![
                Token::Ident("access".into()),
                Token::LParen,
                Token::UIdent("P".into()),
                Token::Comma,
                Token::UIdent("O".into()),
                Token::Comma,
                Token::Ident("read".into()),
                Token::RParen,
                Token::ImpliedBy,
                Token::Ident("good".into()),
                Token::LParen,
                Token::UIdent("P".into()),
                Token::RParen,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn prolog_style_arrow() {
        assert_eq!(toks("p :- q."), toks("p <- q."));
    }

    #[test]
    fn colon_identifiers() {
        assert_eq!(
            toks("message:fname rsa:3:c1ebab5d"),
            vec![
                Token::Ident("message:fname".into()),
                Token::Ident("rsa:3:c1ebab5d".into()),
            ]
        );
    }

    #[test]
    fn quotes_and_brackets() {
        assert_eq!(
            toks("export[U2] [| p(X). |]"),
            vec![
                Token::Ident("export".into()),
                Token::LBracket,
                Token::UIdent("U2".into()),
                Token::RBracket,
                Token::LQuote,
                Token::Ident("p".into()),
                Token::LParen,
                Token::UIdent("X".into()),
                Token::RParen,
                Token::Dot,
                Token::RQuote,
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("-> <- != ! <= < >= > << >> = + - * / %"),
            vec![
                Token::Implies,
                Token::ImpliedBy,
                Token::Ne,
                Token::Bang,
                Token::Le,
                Token::Lt,
                Token::Ge,
                Token::Gt,
                Token::LAngles,
                Token::RAngles,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn agg_tokens() {
        assert_eq!(
            toks("agg<<N = count(U)>>"),
            vec![
                Token::Ident("agg".into()),
                Token::LAngles,
                Token::UIdent("N".into()),
                Token::Eq,
                Token::Ident("count".into()),
                Token::LParen,
                Token::UIdent("U".into()),
                Token::RParen,
                Token::RAngles,
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks("42 \"hi\\n\" #dead _"),
            vec![
                Token::Int(42),
                Token::Str("hi\n".into()),
                Token::Bytes(vec![0xde, 0xad]),
                Token::Underscore,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("p. // comment with symbols <- !\nq."), toks("p. q."));
    }

    #[test]
    fn line_tracking() {
        let spanned = lex("p.\nq.\n\nr.").unwrap();
        let lines: Vec<usize> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 1, 2, 2, 4, 4]);
    }

    #[test]
    fn col_tracking() {
        let spanned = lex("p(X).\n  q(Y).").unwrap();
        let spans: Vec<(usize, usize)> = spanned.iter().map(|s| (s.line, s.col)).collect();
        assert_eq!(
            spans,
            vec![
                (1, 1), // p
                (1, 2), // (
                (1, 3), // X
                (1, 4), // )
                (1, 5), // .
                (2, 3), // q
                (2, 4), // (
                (2, 5), // Y
                (2, 6), // )
                (2, 7), // .
            ]
        );
    }

    #[test]
    fn lex_error_spans() {
        let err = lex("p.\n  $").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
        assert!(err.to_string().contains("2:3"));
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("#abc").is_err()); // odd hex length
        assert!(lex("99999999999999999999").is_err());
        assert!(lex("$").is_err());
    }

    #[test]
    fn at_token() {
        assert_eq!(
            toks("reachable(Z,D)@Z"),
            vec![
                Token::Ident("reachable".into()),
                Token::LParen,
                Token::UIdent("Z".into()),
                Token::Comma,
                Token::UIdent("D".into()),
                Token::RParen,
                Token::At,
                Token::UIdent("Z".into()),
            ]
        );
    }

    #[test]
    fn empty_byte_literal() {
        assert_eq!(toks("#"), vec![Token::Bytes(Vec::new())]);
        // `#xyz` is an empty byte string followed by an identifier.
        assert_eq!(
            toks("#xyz"),
            vec![Token::Bytes(Vec::new()), Token::Ident("xyz".into())]
        );
    }
}
