//! # lbtrust-datalog — the Datalog substrate of LBTrust
//!
//! This crate implements the language and evaluation machinery that the
//! LBTrust paper (CIDR 2009) obtains from the LogicBlox platform:
//!
//! * the **LBTrust Datalog dialect** — rules, facts, schema constraints
//!   (`F1 -> F2.`), partitioned atoms (`p[X](Y)`), quoted code terms
//!   (`[| ... |]`) with meta-variables and Kleene star, aggregation
//!   (`agg<<N = count(U)>>`), arithmetic and comparisons
//!   ([`lexer`], [`parser`], [`ast`]);
//! * **normalization** — DNF splitting of nested bodies ([`dnf`]) and
//!   range-restriction/safety checking ([`safety`]);
//! * **evaluation** — stratified semi-naive bottom-up fixpoint with
//!   incremental recomputation, plus a naive baseline ([`eval`],
//!   [`strata`], [`db`]);
//! * **goal-directed evaluation** — a magic-sets rewrite and a tabled
//!   top-down resolver ([`magic`], [`topdown`]) for the paper's
//!   "top-down to bottom-up" discussion (§5.1, §7);
//! * **meta-matching** — quote-pattern matching and template
//!   instantiation ([`unify`]), the mechanism behind LogicBlox
//!   meta-programming as used by LBTrust;
//! * **external builtins** — the registry through which the trust layer
//!   plugs in cryptographic predicates like `rsasign` ([`builtins`]);
//! * **provenance** — proof-tree reconstruction for derived tuples
//!   ([`provenance`]), the §7 extension the paper lists as in-progress.
//!
//! Higher layers live in their own crates: `lbtrust-metamodel` (the
//! Figure 1 meta-model, reflection, meta-constraints), `lbtrust`
//! (workspaces, `says`, delegation, distribution), and the case-study
//! crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod db;
pub mod dnf;
pub mod dred;
pub mod eval;
pub mod intern;
pub mod lexer;
pub mod magic;
pub mod parser;
pub mod provenance;
pub mod safety;
pub mod strata;
pub mod topdown;
pub mod unify;
pub mod value;

pub use ast::{Atom, BodyItem, Constraint, Formula, Program, Rule, Term};
pub use builtins::Builtins;
pub use db::{Database, Relation, Tuple};
pub use eval::{Engine, EvalError, EvalStats};
pub use intern::Symbol;
pub use lexer::Span;
pub use parser::{parse_atom, parse_program, parse_rule, ParseError};
pub use unify::{Binding, Bindings};
pub use value::Value;
