//! Property tests for the AST, parser and meta-matching machinery:
//! print/parse roundtrips over *generated* rules, and match/instantiate
//! laws for quote patterns.

use lbtrust_datalog::ast::{Atom, BodyItem, CmpOp, Expr, PredRef, Rule, Term};
use lbtrust_datalog::{parse_rule, Bindings, Symbol, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Lowercase identifiers for predicates/constants.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("reserved words", |s| s != "agg" && s != "me")
}

/// Uppercase identifiers for variables.
fn var_name() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,4}".boxed()
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        ident().prop_map(|s| Value::sym(&s)),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        "[a-z ]{0,10}".prop_map(|s| Value::str(&s)),
        prop::collection::vec(any::<u8>(), 0..6).prop_map(|b| Value::bytes(&b)),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        var_name().prop_map(|v| Term::var(&v)),
        arb_value().prop_map(Term::Val),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (ident(), prop::collection::vec(arb_term(), 0..4)).prop_map(|(p, args)| Atom {
        pred: PredRef::Name(Symbol::intern(&p)),
        key_args: Vec::new(),
        args,
    })
}

fn arb_body_item() -> impl Strategy<Value = BodyItem> {
    prop_oneof![
        (arb_atom(), any::<bool>()).prop_map(|(atom, negated)| BodyItem::Lit { negated, atom }),
        (
            var_name(),
            any::<i32>(),
            prop_oneof![
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge),
                Just(CmpOp::Ne)
            ]
        )
            .prop_map(|(v, n, op)| BodyItem::Cmp {
                op,
                lhs: Expr::var(&v),
                rhs: Expr::Term(Term::int(n as i64)),
            }),
    ]
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    (arb_atom(), prop::collection::vec(arb_body_item(), 0..4)).prop_map(|(head, body)| Rule {
        heads: vec![head],
        body,
        agg: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print ∘ parse ∘ print = print: the canonical form is a fixpoint.
    #[test]
    fn rule_display_parse_roundtrip(rule in arb_rule()) {
        let text = rule.to_string();
        match parse_rule(&text) {
            Ok(reparsed) => prop_assert_eq!(text, reparsed.to_string()),
            Err(e) => prop_assert!(false, "generated rule failed to parse: {text}: {e}"),
        }
    }

    /// Content ids are stable under reparse.
    #[test]
    fn content_id_stable_under_reparse(rule in arb_rule()) {
        let reparsed = parse_rule(&rule.to_string()).unwrap();
        prop_assert_eq!(rule.content_id(), reparsed.content_id());
    }

    /// Matching a ground fact against itself as a pattern succeeds, and
    /// instantiating the pattern under the match reproduces the fact.
    #[test]
    fn match_instantiate_identity(args in prop::collection::vec(arb_value(), 0..4)) {
        let fact = Rule::fact(Atom {
            pred: PredRef::Name(Symbol::intern("p")),
            key_args: Vec::new(),
            args: args.iter().cloned().map(Term::Val).collect(),
        });
        // Pattern with fresh variables in each position.
        let pattern = Rule::fact(Atom {
            pred: PredRef::Name(Symbol::intern("p")),
            key_args: Vec::new(),
            args: (0..args.len()).map(|i| Term::var(&format!("V{i}"))).collect(),
        });
        let fact = Arc::new(fact);
        let envs = Bindings::new().match_rule(&pattern, &fact);
        prop_assert_eq!(envs.len(), 1);
        let rebuilt = envs[0].instantiate_rule(&pattern);
        prop_assert_eq!(rebuilt.to_string(), fact.to_string());
    }

    /// Substituting a symbol that does not occur is the identity.
    #[test]
    fn substitution_identity(rule in arb_rule()) {
        let fresh = Symbol::intern("zz_never_generated_zz");
        let to = Symbol::intern("target");
        prop_assert_eq!(
            rule.substitute_sym(fresh, to).to_string(),
            rule.to_string()
        );
    }

    /// me-substitution reaches every occurrence: after substituting, the
    /// `me` symbol never survives.
    #[test]
    fn substitution_total(args in prop::collection::vec(arb_term(), 0..3)) {
        let me = Symbol::intern("me");
        let alice = Symbol::intern("alice");
        let mut with_me = args.clone();
        with_me.push(Term::sym("me"));
        let inner = Rule::fact(Atom {
            pred: PredRef::Name(Symbol::intern("q")),
            key_args: Vec::new(),
            args: with_me.clone(),
        });
        let rule = Rule::new(
            Atom {
                pred: PredRef::Name(Symbol::intern("p")),
                key_args: Vec::new(),
                args: vec![Term::sym("me"), Term::Quote(Arc::new(inner))],
            },
            vec![],
        );
        let out = rule.substitute_sym(me, alice).to_string();
        // "me" must not remain as a standalone symbol (word-boundary
        // check: not preceded/followed by identifier chars).
        for (i, _) in out.match_indices("me") {
            let before = out[..i].chars().last();
            let after = out[i + 2..].chars().next();
            let standalone = !before.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                && !after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            prop_assert!(!standalone, "unsubstituted me in {out}");
        }
    }
}
