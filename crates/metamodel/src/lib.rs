//! # lbtrust-metamodel — meta-programming for LBTrust
//!
//! Implements §3.3 of the LBTrust paper (CIDR 2009): the meta-model of
//! Figure 1, reflection of installed rules into it, constraint and
//! **meta-constraint** checking, and code generation from derived
//! `active`/`rule` facts.
//!
//! The quote-pattern matching machinery itself lives in
//! `lbtrust_datalog::unify`; this crate supplies the schema, the
//! rule→facts translation, and the checking/generation drivers that the
//! `lbtrust` workspace layer composes into the staged evaluation loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod constraintcheck;
pub mod reflect;
pub mod schema;

pub use codegen::generated_rules;
pub use constraintcheck::{check_constraint, check_constraints, check_fail, CheckError, Violation};
pub use reflect::{reflect_into, reflect_rule};
pub use schema::{meta_model_schema, MetaPreds, META_MODEL_SCHEMA};
