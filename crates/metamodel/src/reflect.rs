//! Reflection: translating installed rules into meta-model facts.
//!
//! "When a rule R is added to the workspace's active rules, it is
//! translated into a set of facts (e.g. rule, head, body, etc.) in the
//! meta-model" (§3.3 of the paper).

use crate::schema::MetaPreds;
use lbtrust_datalog::ast::{Atom, BodyItem, PredRef, Rule, Term};
use lbtrust_datalog::{Database, Symbol, Tuple, Value};
use std::sync::Arc;

/// The meta-entity for an atom: a quoted single-atom fact.
pub fn atom_entity(atom: &Atom) -> Value {
    Value::Quote(Arc::new(Rule {
        heads: vec![atom.clone()],
        body: Vec::new(),
        agg: None,
    }))
}

/// The meta-entity for a rule: its quote.
pub fn rule_entity(rule: &Rule) -> Value {
    Value::Quote(Arc::new(rule.clone()))
}

/// The meta-entity for a variable.
pub fn variable_entity(var: Symbol) -> Value {
    Value::sym(&format!("var:{var}"))
}

/// Reflects one rule into `(predicate, tuple)` meta-facts.
///
/// Comparison items and body-rest meta-variables have no meta-model
/// representation in Figure 1 and are skipped; the paper's
/// meta-constraints only quantify over atoms.
pub fn reflect_rule(rule: &Rule, preds: &MetaPreds) -> Vec<(Symbol, Tuple)> {
    let mut out = Vec::new();
    let r_ent = rule_entity(rule);
    out.push((preds.rule, vec![r_ent.clone()]));
    for head in &rule.heads {
        reflect_atom(head, false, &r_ent, preds, true, &mut out);
    }
    for item in &rule.body {
        if let BodyItem::Lit { negated, atom } = item {
            reflect_atom(atom, *negated, &r_ent, preds, false, &mut out);
        }
    }
    out
}

fn reflect_atom(
    atom: &Atom,
    negated: bool,
    rule_ent: &Value,
    preds: &MetaPreds,
    is_head: bool,
    out: &mut Vec<(Symbol, Tuple)>,
) {
    let a_ent = atom_entity(atom);
    let link = if is_head { preds.head } else { preds.body };
    out.push((link, vec![rule_ent.clone(), a_ent.clone()]));
    out.push((preds.atom, vec![a_ent.clone()]));
    if negated {
        out.push((preds.negated, vec![a_ent.clone()]));
    }
    if let PredRef::Name(p) = atom.pred {
        let p_ent = Value::Sym(p);
        out.push((preds.functor, vec![a_ent.clone(), p_ent.clone()]));
        out.push((preds.predicate, vec![p_ent.clone()]));
        out.push((preds.pname, vec![p_ent, Value::str(p.as_str())]));
    }
    for (i, term) in atom.all_args().enumerate() {
        let t_ent = match term {
            Term::Var(v) => {
                let ent = variable_entity(*v);
                out.push((preds.variable, vec![ent.clone()]));
                out.push((preds.vname, vec![ent.clone(), Value::str(v.as_str())]));
                ent
            }
            Term::Val(v) => {
                out.push((preds.constant, vec![v.clone()]));
                out.push((preds.value, vec![v.clone(), Value::str(&v.to_string())]));
                v.clone()
            }
            // Quotes-as-terms and sequence meta-variables are opaque at
            // the meta-model level; represent them by their printed form.
            other => Value::str(&other.to_string()),
        };
        out.push((preds.term, vec![t_ent.clone()]));
        out.push((preds.arg, vec![a_ent.clone(), Value::Int(i as i64), t_ent]));
    }
}

/// Reflects a rule directly into a database.
pub fn reflect_into(rule: &Rule, preds: &MetaPreds, db: &mut Database) -> usize {
    let mut added = 0;
    for (pred, tuple) in reflect_rule(rule, preds) {
        if db.insert(pred, tuple) {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbtrust_datalog::parse_rule;

    fn reflected(src: &str) -> (Database, MetaPreds, Rule) {
        let rule = parse_rule(src).unwrap();
        let preds = MetaPreds::new();
        let mut db = Database::new();
        reflect_into(&rule, &preds, &mut db);
        (db, preds, rule)
    }

    #[test]
    fn rule_and_atoms_present() {
        let (db, preds, rule) = reflected("access(P,O,read) <- good(P), !banned(P).");
        assert_eq!(db.count(preds.rule), 1);
        assert!(db.contains(preds.rule, &[rule_entity(&rule)]));
        assert_eq!(db.count(preds.head), 1);
        assert_eq!(db.count(preds.body), 2);
        assert_eq!(db.count(preds.negated), 1);
        // Three distinct atoms.
        assert_eq!(db.count(preds.atom), 3);
    }

    #[test]
    fn functor_links_predicate_entities() {
        let (db, preds, _) = reflected("access(P,O,read) <- good(P).");
        // predicate entities are name symbols.
        assert!(db.contains(preds.predicate, &[Value::sym("access")]));
        assert!(db.contains(preds.predicate, &[Value::sym("good")]));
        assert!(db.contains(preds.pname, &[Value::sym("access"), Value::str("access")]));
    }

    #[test]
    fn args_variables_and_constants() {
        let (db, preds, _) = reflected("access(P,O,read) <- good(P).");
        // variable entity with its name.
        assert!(db.contains(preds.vname, &[Value::sym("var:P"), Value::str("P")]));
        // constant entity is the value itself.
        assert!(db.contains(preds.constant, &[Value::sym("read")]));
        assert!(db.contains(preds.value, &[Value::sym("read"), Value::str("read")]));
        // arg positions: access has three.
        let head_atom = atom_entity(&parse_rule("access(P,O,read).").unwrap().heads[0]);
        for (i, ent) in [Value::sym("var:P"), Value::sym("var:O"), Value::sym("read")]
            .iter()
            .enumerate()
        {
            assert!(
                db.contains(
                    preds.arg,
                    &[head_atom.clone(), Value::Int(i as i64), ent.clone()]
                ),
                "arg {i}"
            );
        }
    }

    #[test]
    fn keyed_atoms_reflect_keys_first() {
        // export[U2](me,R,S): arg positions cover the key first, matching
        // the flat storage layout.
        let (db, preds, _) = reflected("export[U2](alice,R,S) <- says(alice,U2,R).");
        let head = parse_rule("export[U2](alice,R,S).").unwrap().heads[0].clone();
        let ent = atom_entity(&head);
        assert!(db.contains(
            preds.arg,
            &[ent.clone(), Value::Int(0), Value::sym("var:U2")]
        ));
        assert!(db.contains(preds.arg, &[ent, Value::Int(1), Value::sym("alice")]));
    }

    #[test]
    fn reflection_is_idempotent() {
        let rule = parse_rule("p(X) <- q(X).").unwrap();
        let preds = MetaPreds::new();
        let mut db = Database::new();
        let first = reflect_into(&rule, &preds, &mut db);
        let second = reflect_into(&rule, &preds, &mut db);
        assert!(first > 0);
        assert_eq!(second, 0);
    }

    #[test]
    fn meta_constraint_translation_example() {
        // The paper's translated meta-constraint (§3.3):
        //   owner(U,R1), rule(R1), body(R1,A1), atom(A1), functor(A1,P)
        //     -> access(U,P,read).
        // Reflect a rule, add owner and access facts, and check that the
        // premise join finds the expected P.
        use lbtrust_datalog::{Bindings, Symbol as S};
        let rule = parse_rule("spend(X) <- budget(X).").unwrap();
        let preds = MetaPreds::new();
        let mut db = Database::new();
        reflect_into(&rule, &preds, &mut db);
        db.insert(
            S::intern("owner"),
            vec![Value::sym("alice"), rule_entity(&rule)],
        );

        // Join the premise by hand via pattern matching.
        let premise = lbtrust_datalog::parse_program(
            "violation(U,P) <- owner(U,R1), rule(R1), body(R1,A1), atom(A1), functor(A1,P).",
        )
        .unwrap();
        let builtins = lbtrust_datalog::Builtins::new();
        lbtrust_datalog::Engine::new(&premise.rules, &builtins)
            .run(&mut db)
            .unwrap();
        let violation = S::intern("violation");
        assert_eq!(db.count(violation), 1);
        assert!(db.contains(violation, &[Value::sym("alice"), Value::sym("budget")]));
        let _ = Bindings::new();
    }
}
