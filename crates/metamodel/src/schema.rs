//! The meta-model schema of Figure 1 of the paper.
//!
//! Every installed rule is reflected into these predicates, so rules and
//! constraints can quantify over the program itself ("reflection", §3.3).
//!
//! Entity encoding (our design; the paper leaves entity identity to
//! LogicBlox's internal ids):
//!
//! * a **rule** entity is the quoted rule itself (`Value::Quote`) — the
//!   same representation `says`/`active` carry, so quote-pattern matching
//!   and meta-model queries agree;
//! * an **atom** entity is a quoted single-atom fact wrapping the atom;
//! * a **predicate** entity is the predicate's name symbol (this makes
//!   the paper's `owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,read)`
//!   meta-constraint line up: `P` binds to the name symbol either way);
//! * a **variable** entity is the symbol `var:<name>`;
//! * a **constant** entity is the constant value itself, with `value`
//!   mapping it to its printed form.

use lbtrust_datalog::{parse_program, Program, Symbol};

/// The meta-model declarations, verbatim from Figure 1.
pub const META_MODEL_SCHEMA: &str = r#"
    rule(R) ->.
    head(R,A) -> rule(R), atom(A).
    body(R,A) -> rule(R), atom(A).
    atom(A) -> .
    functor(A,P) -> atom(A), predicate(P).
    arg(A,I,T) -> atom(A), int(I), term(T).
    negated(A) -> atom(A).
    term(T) -> .
    variable(X) -> term(X).
    vname(X,N) -> variable(X), string(N).
    constant(C) -> term(C).
    value(C,V) -> constant(C), string(V).
    predicate(P) -> .
    pname(P,N) -> predicate(P), string(N).
"#;

/// Parses the Figure 1 schema into constraint declarations.
pub fn meta_model_schema() -> Program {
    parse_program(META_MODEL_SCHEMA).expect("the Figure 1 schema parses")
}

/// Interned names of the meta-model predicates.
#[derive(Clone, Copy, Debug)]
pub struct MetaPreds {
    /// `rule(R)`
    pub rule: Symbol,
    /// `head(R,A)`
    pub head: Symbol,
    /// `body(R,A)`
    pub body: Symbol,
    /// `atom(A)`
    pub atom: Symbol,
    /// `functor(A,P)`
    pub functor: Symbol,
    /// `arg(A,I,T)`
    pub arg: Symbol,
    /// `negated(A)`
    pub negated: Symbol,
    /// `term(T)`
    pub term: Symbol,
    /// `variable(X)`
    pub variable: Symbol,
    /// `vname(X,N)`
    pub vname: Symbol,
    /// `constant(C)`
    pub constant: Symbol,
    /// `value(C,V)`
    pub value: Symbol,
    /// `predicate(P)`
    pub predicate: Symbol,
    /// `pname(P,N)`
    pub pname: Symbol,
    /// `active(R)` — the workspace's active-rule table (§3.3).
    pub active: Symbol,
}

impl Default for MetaPreds {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaPreds {
    /// Interns all names.
    pub fn new() -> MetaPreds {
        MetaPreds {
            rule: Symbol::intern("rule"),
            head: Symbol::intern("head"),
            body: Symbol::intern("body"),
            atom: Symbol::intern("atom"),
            functor: Symbol::intern("functor"),
            arg: Symbol::intern("arg"),
            negated: Symbol::intern("negated"),
            term: Symbol::intern("term"),
            variable: Symbol::intern("variable"),
            vname: Symbol::intern("vname"),
            constant: Symbol::intern("constant"),
            value: Symbol::intern("value"),
            predicate: Symbol::intern("predicate"),
            pname: Symbol::intern("pname"),
            active: Symbol::intern("active"),
        }
    }

    /// All meta-model predicate names (excluding `active`).
    pub fn all(&self) -> [Symbol; 14] {
        [
            self.rule,
            self.head,
            self.body,
            self.atom,
            self.functor,
            self.arg,
            self.negated,
            self.term,
            self.variable,
            self.vname,
            self.constant,
            self.value,
            self.predicate,
            self.pname,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_parses_to_fourteen_declarations() {
        let program = meta_model_schema();
        assert_eq!(program.constraints.len(), 14);
        assert!(program.rules.is_empty());
    }

    #[test]
    fn preds_are_stable() {
        let a = MetaPreds::new();
        let b = MetaPreds::new();
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.all().len(), 14);
    }
}
