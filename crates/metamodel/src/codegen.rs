//! Code generation: turning derived meta-facts back into installable
//! rules.
//!
//! "A rule may perform code generation (adding or rewriting existing
//! rules) by referring to the meta-model in its head. If the evaluation
//! of a rule puts new facts into the meta-model, then those new facts
//! turn into a new rule which must itself be evaluated" (§3.3).
//!
//! With our entity encoding a rule entity *is* its quote, so generation
//! is direct: any quote derived into `active(R)` (the workspace's active
//! table, used by `says1`, `sf0`, `del1`, …) or `rule(R)` is a candidate
//! new rule. The workspace drives the staged fixpoint: evaluate → extract
//! → install → re-evaluate, until no new rules appear.

use crate::schema::MetaPreds;
use lbtrust_datalog::ast::Rule;
use lbtrust_datalog::{Database, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Extracts every quoted rule derived into `active(R)` or `rule(R)`.
/// Duplicates (by content) are returned once.
pub fn generated_rules(db: &Database, preds: &MetaPreds) -> Vec<Arc<Rule>> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = Vec::new();
    for pred in [preds.active, preds.rule] {
        let Some(rel) = db.relation(pred) else {
            continue;
        };
        for tuple in rel.iter() {
            let [Value::Quote(rule)] = tuple.as_slice() else {
                continue;
            };
            if seen.insert(rule.content_id()) {
                out.push(rule.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbtrust_datalog::{parse_rule, Symbol};

    #[test]
    fn extracts_active_quotes() {
        let preds = MetaPreds::new();
        let mut db = Database::new();
        let r1 = Arc::new(parse_rule("p(X) <- q(X).").unwrap());
        let r2 = Arc::new(parse_rule("good(alice).").unwrap());
        db.insert(preds.active, vec![Value::Quote(r1.clone())]);
        db.insert(preds.rule, vec![Value::Quote(r2.clone())]);
        // Non-quote entries are ignored.
        db.insert(preds.active, vec![Value::sym("not-a-rule")]);
        let rules = generated_rules(&db, &preds);
        assert_eq!(rules.len(), 2);
        let texts: HashSet<String> = rules.iter().map(|r| r.to_string()).collect();
        assert!(texts.contains("p(X) <- q(X)."));
        assert!(texts.contains("good(alice)."));
    }

    #[test]
    fn dedups_by_content() {
        let preds = MetaPreds::new();
        let mut db = Database::new();
        let r = Arc::new(parse_rule("p(X) <- q(X).").unwrap());
        db.insert(preds.active, vec![Value::Quote(r.clone())]);
        db.insert(preds.rule, vec![Value::Quote(r.clone())]);
        assert_eq!(generated_rules(&db, &preds).len(), 1);
        let _ = Symbol::intern("x");
    }
}
