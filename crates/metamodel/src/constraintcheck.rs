//! Constraint checking: schema constraints and meta-constraints.
//!
//! A constraint `F1 -> F2.` means `fail() <- F1, !(F2).` (§3.2 of the
//! paper): evaluation fails if some binding satisfies the premise but no
//! extension of it satisfies the requirement. *Meta*-constraints are the
//! same mechanism with premises over the meta-model (and quote patterns),
//! checked when rules are installed; ordinary constraints are checked
//! after each fixpoint.

use lbtrust_datalog::ast::{Constraint, Formula, Rule};
use lbtrust_datalog::eval::{Engine, EvalError};
use lbtrust_datalog::{Bindings, Builtins, Database};
use std::fmt;

/// A constraint violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated constraint, printed.
    pub constraint: String,
    /// The premise bindings that had no satisfying requirement, printed
    /// compactly.
    pub witness: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint violated: {} (witness: {})",
            self.constraint, self.witness
        )
    }
}

impl std::error::Error for Violation {}

/// Errors from constraint checking: either a genuine violation or an
/// evaluation problem (unbound variables, bad builtin use, …).
#[derive(Debug)]
pub enum CheckError {
    /// The constraint is violated.
    Violation(Box<Violation>),
    /// Evaluation failed while checking.
    Eval(EvalError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Violation(v) => write!(f, "{v}"),
            CheckError::Eval(e) => write!(f, "constraint check failed to evaluate: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<EvalError> for CheckError {
    fn from(e: EvalError) -> Self {
        CheckError::Eval(e)
    }
}

/// Checks one constraint against a database. `builtins` supplies external
/// predicates used in the premise or requirement.
pub fn check_constraint(
    constraint: &Constraint,
    db: &Database,
    builtins: &Builtins,
) -> Result<(), CheckError> {
    // A carrier rule so the engine's item evaluator has rule context for
    // error messages.
    let carrier = Rule {
        heads: Vec::new(),
        body: constraint.body.clone(),
        agg: None,
    };
    let engine = Engine::new(std::slice::from_ref(&carrier), builtins);

    // Enumerate premise environments.
    let mut envs = vec![Bindings::new()];
    for item in &constraint.body {
        if envs.is_empty() {
            return Ok(());
        }
        envs = engine.eval_single_item(&carrier, item, envs, db)?;
    }

    // Each premise environment must extend to satisfy the requirement.
    for env in envs {
        if !formula_satisfiable(&constraint.requires, &carrier, &engine, db, &env)? {
            let witness = describe_env(&env);
            return Err(CheckError::Violation(Box::new(Violation {
                constraint: constraint.to_string(),
                witness,
            })));
        }
    }
    Ok(())
}

/// Checks every constraint.
pub fn check_constraints(
    constraints: &[Constraint],
    db: &Database,
    builtins: &Builtins,
) -> Result<(), CheckError> {
    constraints
        .iter()
        .try_for_each(|c| check_constraint(c, db, builtins))
}

/// Whether `formula` is satisfiable by some extension of `env`.
fn formula_satisfiable(
    formula: &Formula,
    carrier: &Rule,
    engine: &Engine<'_>,
    db: &Database,
    env: &Bindings,
) -> Result<bool, CheckError> {
    Ok(!satisfy(formula, carrier, engine, db, vec![env.clone()])?.is_empty())
}

/// All extensions of `envs` satisfying `formula`.
fn satisfy(
    formula: &Formula,
    carrier: &Rule,
    engine: &Engine<'_>,
    db: &Database,
    envs: Vec<Bindings>,
) -> Result<Vec<Bindings>, CheckError> {
    match formula {
        Formula::Item(item) => Ok(engine.eval_single_item(carrier, item, envs, db)?),
        Formula::And(parts) => {
            let mut current = envs;
            for part in parts {
                if current.is_empty() {
                    break;
                }
                current = satisfy(part, carrier, engine, db, current)?;
            }
            Ok(current)
        }
        Formula::Or(parts) => {
            let mut out = Vec::new();
            for part in parts {
                out.extend(satisfy(part, carrier, engine, db, envs.clone())?);
            }
            Ok(out)
        }
        Formula::Not(inner) => {
            // ¬F keeps the environments F cannot extend.
            let mut out = Vec::new();
            for env in envs {
                if satisfy(inner, carrier, engine, db, vec![env.clone()])?.is_empty() {
                    out.push(env);
                }
            }
            Ok(out)
        }
    }
}

fn describe_env(env: &Bindings) -> String {
    let mut parts: Vec<String> = env
        .iter()
        .map(|(var, binding)| format!("{var}={binding:?}"))
        .collect();
    parts.sort();
    if parts.is_empty() {
        "<no bindings>".to_string()
    } else {
        parts.join(", ")
    }
}

/// Checks the special `fail()` predicate: if any tuple was derived into
/// it, evaluation "fails by terminating with an error" (§3.2).
pub fn check_fail(db: &Database) -> Result<(), CheckError> {
    let fail = lbtrust_datalog::Symbol::intern("fail");
    if db.count(fail) > 0 {
        return Err(CheckError::Violation(Box::new(Violation {
            constraint: "fail()".into(),
            witness: format!("{} fail() derivation(s)", db.count(fail)),
        })));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbtrust_datalog::{parse_program, Symbol, Value};

    fn db_with(facts: &[(&str, &[&str])]) -> Database {
        let mut db = Database::new();
        for (pred, tuple) in facts {
            db.insert(
                Symbol::intern(pred),
                tuple.iter().map(|v| Value::sym(v)).collect(),
            );
        }
        db
    }

    fn constraint(src: &str) -> Constraint {
        parse_program(src).unwrap().constraints.remove(0)
    }

    #[test]
    fn satisfied_constraint_passes() {
        let c = constraint("access(P,O,M) -> principal(P).");
        let db = db_with(&[
            ("access", &["alice", "f", "read"][..]),
            ("principal", &["alice"][..]),
        ]);
        assert!(check_constraint(&c, &db, &Builtins::new()).is_ok());
    }

    #[test]
    fn violated_constraint_reports_witness() {
        let c = constraint("access(P,O,M) -> principal(P).");
        let db = db_with(&[("access", &["mallory", "f", "read"][..])]);
        let err = check_constraint(&c, &db, &Builtins::new()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("mallory"), "witness missing: {text}");
    }

    #[test]
    fn conjunction_requirement() {
        let c = constraint("access(P,O,M) -> principal(P), object(O), mode(M).");
        let db = db_with(&[
            ("access", &["alice", "f", "read"][..]),
            ("principal", &["alice"][..]),
            ("object", &["f"][..]),
        ]);
        // mode(read) missing.
        assert!(check_constraint(&c, &db, &Builtins::new()).is_err());
    }

    #[test]
    fn disjunction_requirement() {
        let c = constraint("p(X) -> q(X); r(X).");
        let db = db_with(&[("p", &["a"][..]), ("r", &["a"][..])]);
        assert!(check_constraint(&c, &db, &Builtins::new()).is_ok());
    }

    #[test]
    fn negated_requirement() {
        let c = constraint("delegation(U,P) -> !revoked(U).");
        let ok = db_with(&[("delegation", &["a", "p"][..])]);
        assert!(check_constraint(&c, &ok, &Builtins::new()).is_ok());
        let bad = db_with(&[("delegation", &["a", "p"][..]), ("revoked", &["a"][..])]);
        assert!(check_constraint(&c, &bad, &Builtins::new()).is_err());
    }

    #[test]
    fn declaration_always_holds() {
        let c = constraint("rule(R) ->.");
        let db = db_with(&[("rule", &["x"][..])]);
        assert!(check_constraint(&c, &db, &Builtins::new()).is_ok());
    }

    #[test]
    fn empty_premise_relation_passes() {
        let c = constraint("access(P,O,M) -> principal(P).");
        assert!(check_constraint(&c, &Database::new(), &Builtins::new()).is_ok());
    }

    #[test]
    fn fail_predicate() {
        let mut db = Database::new();
        assert!(check_fail(&db).is_ok());
        db.insert(Symbol::intern("fail"), vec![]);
        assert!(check_fail(&db).is_err());
    }

    #[test]
    fn meta_constraint_with_quote_pattern() {
        // The paper's mayRead-style constraint: any rule said to me that
        // reads predicate P requires mayRead(U,P).
        use crate::reflect::rule_entity;
        let c = constraint("owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,read).");
        let rule = lbtrust_datalog::parse_rule("spend(X) <- budget(X).").unwrap();
        let mut db = Database::new();
        db.insert(
            Symbol::intern("owner"),
            vec![Value::sym("alice"), rule_entity(&rule)],
        );
        // Without the access grant: violation naming 'budget'.
        let err = check_constraint(&c, &db, &Builtins::new()).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        // Grant access: passes.
        db.insert(
            Symbol::intern("access"),
            vec![
                Value::sym("alice"),
                Value::sym("budget"),
                Value::sym("read"),
            ],
        );
        assert!(check_constraint(&c, &db, &Builtins::new()).is_ok());
    }
}
