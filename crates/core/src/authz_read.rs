//! The concurrent authorization read front-end: immutable snapshots,
//! `Send + Sync` reader handles, and a precisely-invalidated decision
//! cache.
//!
//! Production trust management is read-dominated — millions of "may X
//! do Y" queries against a slowly-mutating credential set — yet
//! [`crate::System::authorize`] needs `&System`, so every query
//! contends with the fixpoint writer. This module splits the read path
//! off: at each quiescent point the system publishes an
//! [`AuthzSnapshot`] — an immutable, `Arc`-shared view of every
//! principal's materialized database, active-certificate ground-head
//! index, and audit introducer map — and any number of
//! [`AuthzReader`] handles evaluate `authorize()` against it from
//! other threads while imports and revocations keep streaming through
//! the writer.
//!
//! Three pieces, all `std`-only (the crate stays
//! `#![forbid(unsafe_code)]`):
//!
//! * **[`AuthzSnapshot`]** — the published view. Readers see the exact
//!   state of the last quiescent point: every decision a reader makes
//!   equals the serial `authorize()` answer at that store version.
//! * **`SnapshotCell`** — a `Mutex<Arc<_>>` slot paired with an
//!   `AtomicU64` generation. Readers keep a per-handle cached `Arc`
//!   and compare generations with one atomic load per query; only a
//!   generation change takes the slot lock (clone-on-read arc-swap).
//!   Queries then run against the *handle-local* `Arc`, so reader
//!   threads never contend on a shared refcount cache line.
//! * **`DecisionCache`** — a sharded, 2Q-evicted map keyed
//!   `(principal, authz-version, goal)`. Each entry records the
//!   supporting certificate digests of the cached decision, so a DRed
//!   retraction (revocation or TTL expiry) invalidates exactly the
//!   poisoned decisions: a cached grant never survives the revocation
//!   of a certificate it rests on. Any change the invalidation
//!   bookkeeping cannot attribute precisely (fresh imports, rule
//!   changes, non-monotonic rebuilds) bumps the principal's
//!   authz-version instead, orphaning every older key at once (the 2Q
//!   eviction ages them out).
//!
//! Cache traffic is counted in the volatile `authz.cache_hits` /
//! `authz.cache_misses` / `authz.cache_invalidations` counters and
//! publication cost in the `snapshot.publish_ns` histogram — all
//! excluded from deterministic snapshots, since they depend on reader
//! scheduling.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lbtrust_certstore::{CertDigest, EvictionPolicy, LruMap};
use lbtrust_datalog::ast::Rule;
use lbtrust_datalog::provenance::{explain, Proof};
use lbtrust_datalog::{Builtins, Database, ParseError, Symbol, Tuple, Value};
use lbtrust_obs::{Counter, Histogram, Registry};

use crate::principal::Principal;
use crate::system::{AuthzDecision, SysError};
use crate::workspace::WsError;

/// Decision-cache shard count: enough to keep reader threads off each
/// other's locks at typical core counts, few enough that invalidation
/// sweeps stay cheap.
const CACHE_SHARDS: usize = 16;

/// Per-shard decision-cache capacity (2Q-evicted).
const CACHE_SHARD_CAPACITY: usize = 1024;

/// One principal's share of a published snapshot: everything a reader
/// needs to decide and cite an authorization without touching the live
/// workspace or store.
pub(crate) struct PrincipalSnapshot {
    pub(crate) me: Principal,
    /// Installed user + generated rules at the quiescent point.
    pub(crate) rules: Vec<Rule>,
    /// The materialized database at the quiescent point.
    pub(crate) db: Database,
    pub(crate) builtins: Builtins,
    /// The store's incrementally-maintained ground-head index:
    /// predicate → ground head tuple → digests of live bodyless
    /// certificates asserting that fact.
    pub(crate) ground_heads: HashMap<Symbol, HashMap<Tuple, Vec<CertDigest>>>,
    /// Audit introducer map: canonical rule text → digests of the
    /// certificates that imported that rule.
    pub(crate) introducers: HashMap<String, Vec<CertDigest>>,
    /// The cache-key version: decisions cached under it stay servable
    /// until it bumps (or a poisoned-digest invalidation removes them).
    pub(crate) authz_version: u64,
    /// The store's active-set version at publication, for diagnostics
    /// and the equivalence tests.
    pub(crate) store_version: u64,
}

impl PrincipalSnapshot {
    /// Proves `goal` against the snapshot — the snapshot-side twin of
    /// `Workspace::explain_proof`, over captured rules/db/builtins.
    fn proof(&self, goal: &str) -> Result<Option<Proof>, WsError> {
        let atom = lbtrust_datalog::parse_atom(goal)?;
        let atom = atom.substitute_sym(Symbol::intern("me"), self.me);
        let pred = atom.pred.name().ok_or(WsError::Parse(ParseError {
            message: "authorize takes a concrete fact".into(),
            line: 0,
            col: 0,
        }))?;
        let tuple: Option<Tuple> = atom.all_args().map(|t| t.as_val().cloned()).collect();
        let Some(tuple) = tuple else {
            return Err(WsError::Parse(ParseError {
                message: "authorize takes a ground fact".into(),
                line: 0,
                col: 0,
            }));
        };
        Ok(explain(&self.rules, &self.db, &self.builtins, pred, &tuple))
    }

    /// Decides `goal`: grant/deny, supporting digests, rendered proof.
    fn decide(&self, goal: &str) -> Result<CachedDecision, SysError> {
        let proof = self.proof(goal)?;
        let granted = proof.is_some();
        let (supporting, rendered) = match &proof {
            Some(proof) => (
                collect_supporting(proof, &self.ground_heads, |rule_src, out| {
                    if let Some(ds) = self.introducers.get(rule_src) {
                        out.extend(ds.iter().copied());
                    }
                }),
                Some(proof.render()),
            ),
            None => (Vec::new(), None),
        };
        Ok(CachedDecision {
            granted,
            supporting,
            proof: rendered,
        })
    }
}

/// Walks a proof tree collecting the digests of every certificate the
/// derivation rests on: ground-head index hits for cert-materialized
/// facts, introducer citations for `says` premises. Shared by the
/// serial [`crate::System::authorize`] and the snapshot readers, so
/// both cite identically. The result is sorted on raw digest bytes
/// (identical order to the old hex-string sort — lowercase hex is
/// monotone in the bytes — without a `String` per comparison) and
/// deduplicated.
pub(crate) fn collect_supporting<F>(
    proof: &Proof,
    ground_heads: &HashMap<Symbol, HashMap<Tuple, Vec<CertDigest>>>,
    mut cite_introducers: F,
) -> Vec<CertDigest>
where
    F: FnMut(&str, &mut Vec<CertDigest>),
{
    let says = Symbol::intern("says");
    let mut supporting: Vec<CertDigest> = Vec::new();
    let mut frontier = vec![proof];
    while let Some(node) = frontier.pop() {
        let (pred, tuple) = node.conclusion();
        // A `says` premise carries its certified rule as the trailing
        // quotation; the introducer map cites the certificate(s) that
        // imported that rule.
        if pred == says {
            if let Some(Value::Quote(rule)) = tuple.last() {
                cite_introducers(&rule.to_string(), &mut supporting);
            }
        }
        // A certified bodyless rule materializes its head as a base
        // fact, so a proof can rest on a credential without a `says`
        // premise appearing — the ground-head index maps the fact back
        // to its content address. Borrow-keyed probe: no tuple clone.
        if let Some(digests) = ground_heads.get(&pred).and_then(|m| m.get(tuple)) {
            supporting.extend(digests.iter().copied());
        }
        if let Proof::Derived { premises, .. } = node {
            frontier.extend(premises.iter());
        }
    }
    supporting.sort_unstable();
    supporting.dedup();
    supporting
}

/// The atomically-published view of every principal at the last
/// quiescent point. Immutable once published; readers share it by
/// `Arc`.
pub struct AuthzSnapshot {
    /// Publication generation (monotone; generation 0 is the empty
    /// pre-publication snapshot). Stamped by `SnapshotCell::publish`.
    pub(crate) generation: u64,
    pub(crate) principals: HashMap<Principal, Arc<PrincipalSnapshot>>,
}

impl AuthzSnapshot {
    /// The publication generation this snapshot was installed under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The store version captured for `who`, if registered.
    pub fn store_version(&self, who: Principal) -> Option<u64> {
        self.principals.get(&who).map(|p| p.store_version)
    }
}

/// A std-only arc-swap: a mutex-guarded `Arc` slot plus an atomic
/// generation readers poll without the lock. The generation is bumped
/// *inside* the slot lock, so a reader that re-reads both under the
/// lock always gets a consistent pair.
pub(crate) struct SnapshotCell {
    generation: AtomicU64,
    slot: Mutex<Arc<AuthzSnapshot>>,
}

impl SnapshotCell {
    fn new() -> SnapshotCell {
        SnapshotCell {
            generation: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(AuthzSnapshot {
                generation: 0,
                principals: HashMap::new(),
            })),
        }
    }

    /// Atomically installs `snap` as the current snapshot, stamping it
    /// with the next generation. Readers observe either the old pair or
    /// the new pair, never a mix.
    pub(crate) fn publish(&self, mut snap: AuthzSnapshot) -> u64 {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        snap.generation = generation;
        *slot = Arc::new(snap);
        self.generation.store(generation, Ordering::Release);
        generation
    }

    /// The current generation — one atomic load, no lock.
    fn current_generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The current `(generation, snapshot)` pair, consistently.
    fn load(&self) -> (u64, Arc<AuthzSnapshot>) {
        let slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        (self.generation.load(Ordering::Acquire), slot.clone())
    }
}

/// A cached decision: everything needed to answer a repeat query
/// byte-for-byte, plus the supporting digests the invalidation sweep
/// matches poisoned certificates against.
#[derive(Clone)]
struct CachedDecision {
    granted: bool,
    supporting: Vec<CertDigest>,
    proof: Option<String>,
}

impl CachedDecision {
    fn into_decision(self, who: Principal, goal: String) -> AuthzDecision {
        AuthzDecision {
            principal: who,
            goal,
            granted: self.granted,
            supporting: self.supporting,
            proof: self.proof,
        }
    }
}

/// Cache key: `(principal, authz-version, goal)`. The version
/// component orphans every stale entry at once when a principal's
/// decision function changes in a way the precise invalidation cannot
/// attribute (2Q eviction reclaims the orphans).
type CacheKey = (Principal, u64, String);

/// The sharded 2Q decision cache.
struct DecisionCache {
    shards: Vec<Mutex<LruMap<CacheKey, CachedDecision>>>,
}

impl DecisionCache {
    fn new() -> DecisionCache {
        DecisionCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(LruMap::with_policy(
                        Some(CACHE_SHARD_CAPACITY),
                        EvictionPolicy::TwoQueue,
                    ))
                })
                .collect(),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<LruMap<CacheKey, CachedDecision>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    fn get(&self, key: &CacheKey) -> Option<CachedDecision> {
        let mut shard = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.get(key).cloned()
    }

    fn insert(&self, key: CacheKey, value: CachedDecision) {
        let mut shard = self
            .shard_of(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.insert(key, value);
    }

    /// Removes every cached decision of `who` at `version` that rests
    /// on a poisoned certificate, returning how many died. Decisions
    /// not citing a poisoned digest survive: a retraction-only change
    /// cannot flip them (facts only disappear, and any fact that could
    /// disappear is cited by its digest).
    fn invalidate_poisoned(
        &self,
        who: Principal,
        version: u64,
        poisoned: &HashSet<CertDigest>,
    ) -> u64 {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            let victims: Vec<CacheKey> = shard
                .iter()
                .filter(|(key, value)| {
                    key.0 == who
                        && key.1 == version
                        && value.supporting.iter().any(|d| poisoned.contains(d))
                })
                .map(|(key, _)| key.clone())
                .collect();
            for key in victims {
                shard.remove(&key);
                removed += 1;
            }
        }
        removed
    }
}

/// State shared between the owning [`crate::System`] (publisher) and
/// every [`AuthzReader`] handle.
pub(crate) struct AuthzShared {
    pub(crate) cell: SnapshotCell,
    cache: DecisionCache,
    hits: Counter,
    misses: Counter,
    pub(crate) invalidations: Counter,
    pub(crate) publish_ns: Histogram,
}

impl AuthzShared {
    pub(crate) fn new(registry: &Registry) -> AuthzShared {
        AuthzShared {
            cell: SnapshotCell::new(),
            cache: DecisionCache::new(),
            hits: registry.volatile_counter("authz.cache_hits"),
            misses: registry.volatile_counter("authz.cache_misses"),
            invalidations: registry.volatile_counter("authz.cache_invalidations"),
            publish_ns: registry.timing("snapshot.publish_ns"),
        }
    }

    /// Drops every cached decision of `who` at `version` resting on a
    /// poisoned certificate (see [`DecisionCache::invalidate_poisoned`]),
    /// counting the casualties in `authz.cache_invalidations`.
    pub(crate) fn invalidate_poisoned(
        &self,
        who: Principal,
        version: u64,
        poisoned: &HashSet<CertDigest>,
    ) {
        let removed = self.cache.invalidate_poisoned(who, version, poisoned);
        if removed > 0 {
            self.invalidations.add(removed);
        }
    }
}

/// Per-principal publication bookkeeping the system keeps between
/// quiescent points: what was last published, and what happened since.
#[derive(Default)]
pub(crate) struct AuthzPublishState {
    /// The workspace epoch captured at the last publish.
    pub(crate) published_epoch: u64,
    /// The store version captured at the last publish.
    pub(crate) published_store_version: u64,
    /// Workspace-epoch bumps since the last publish attributable to
    /// *incremental DRed retraction repairs*. When every epoch bump in
    /// the window is one of these, cached decisions stay sound except
    /// those resting on the retracted certificates.
    pub(crate) retraction_bumps: u64,
    /// Digests of certificates that died (revocation, expiry, link
    /// break) at this principal since the last publish.
    pub(crate) poisoned: Vec<CertDigest>,
    /// The principal's current cache-key version.
    pub(crate) authz_version: u64,
    /// The last published per-principal snapshot, reused (Arc-shared)
    /// when nothing changed.
    pub(crate) snap: Option<Arc<PrincipalSnapshot>>,
}

/// A `Send + Sync` handle evaluating `authorize()` against the last
/// published [`AuthzSnapshot`], lock-free with respect to the writer:
/// the system keeps importing and revoking while readers decide. Each
/// handle caches the snapshot `Arc` locally and revalidates it with
/// one atomic generation load per query, so handles on different
/// threads share no hot cache line. Decisions hit the shared decision
/// cache first; misses are proved against the snapshot and cached.
///
/// Reader decisions deliberately do **not** move the deterministic
/// `authz.granted`/`authz.denied` counters or the decision journal —
/// both are single-writer surfaces whose contents must not depend on
/// reader thread scheduling. Reader traffic shows up in the volatile
/// `authz.cache_*` counters instead.
pub struct AuthzReader {
    shared: Arc<AuthzShared>,
    /// `(generation, snapshot)` this handle last validated. Queries
    /// borrow the Arc under this *handle-local* mutex (uncontended
    /// unless the handle itself is shared across threads).
    local: Mutex<(u64, Arc<AuthzSnapshot>)>,
}

impl AuthzReader {
    pub(crate) fn new(shared: Arc<AuthzShared>) -> AuthzReader {
        let local = shared.cell.load();
        AuthzReader {
            shared,
            local: Mutex::new(local),
        }
    }

    /// Decides whether `goal` holds for `who` in the last published
    /// snapshot, citing supporting certificate digests exactly like
    /// [`crate::System::authorize`] does at the same store version.
    pub fn authorize(&self, who: Principal, goal: &str) -> Result<AuthzDecision, SysError> {
        let mut local = self.local.lock().unwrap_or_else(|e| e.into_inner());
        if self.shared.cell.current_generation() != local.0 {
            *local = self.shared.cell.load();
        }
        let snapshot = &local.1;
        let ps = snapshot
            .principals
            .get(&who)
            .ok_or(SysError::UnknownPrincipal(who))?;
        let key: CacheKey = (who, ps.authz_version, goal.to_string());
        if let Some(hit) = self.shared.cache.get(&key) {
            self.shared.hits.inc();
            return Ok(hit.into_decision(who, key.2));
        }
        self.shared.misses.inc();
        let decided = ps.decide(goal)?;
        self.shared.cache.insert(key, decided.clone());
        Ok(decided.into_decision(who, goal.to_string()))
    }

    /// The generation of the snapshot this handle would answer from
    /// right now (revalidates first).
    pub fn generation(&self) -> u64 {
        self.shared.cell.current_generation()
    }

    /// The store version the current snapshot captured for `who`.
    pub fn store_version(&self, who: Principal) -> Option<u64> {
        let mut local = self.local.lock().unwrap_or_else(|e| e.into_inner());
        if self.shared.cell.current_generation() != local.0 {
            *local = self.shared.cell.load();
        }
        local.1.store_version(who)
    }
}

impl Clone for AuthzReader {
    fn clone(&self) -> AuthzReader {
        AuthzReader::new(self.shared.clone())
    }
}

// Readers are handed to arbitrary threads; a field that silently loses
// `Send + Sync` (an `Rc`, a non-Sync interior) must fail here at
// compile time, not in downstream thread spawns.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AuthzReader>();
    assert_send_sync::<AuthzSnapshot>();
};
