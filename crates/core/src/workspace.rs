//! Workspaces: "essentially a database instance which contains a set of
//! predicate definitions and a set of active rules (similar to continuous
//! queries)" (§3.1 of the paper).
//!
//! A [`Workspace`] owns one principal's context: its rules (tagged, so
//! authentication preludes can be swapped — the reconfigurability story),
//! constraints (schema- and meta-), asserted base facts, and the
//! materialized database. Evaluation is a **staged fixpoint**: run the
//! semi-naive engine, extract rules generated into `active`/`rule`
//! (§3.3 code generation), install them (with `me` resolution, safety
//! checks, reflection), and repeat until no new rules appear; then check
//! constraints, rolling the workspace back if any is violated ("the
//! evaluation of the Datalog program fails by terminating with an
//! error", §3.2).

use crate::principal::Principal;
use lbtrust_datalog::ast::{BodyItem, Constraint, Rule};
use lbtrust_datalog::eval::{Engine, EvalError, EvalStats};
use lbtrust_datalog::safety::{check_rule, check_rule_at, SafetyError};
use lbtrust_datalog::strata::{stratify_spanned, StratifyError};
use lbtrust_datalog::{parse_program, Builtins, Database, ParseError, Span, Symbol, Tuple, Value};
use lbtrust_metamodel::constraintcheck::{check_constraints, check_fail, CheckError};
use lbtrust_metamodel::reflect::reflect_into;
use lbtrust_metamodel::{generated_rules, MetaPreds};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Errors from workspace operations.
#[derive(Debug)]
pub enum WsError {
    /// Source failed to parse.
    Parse(ParseError),
    /// A rule failed the safety (range-restriction) check.
    Safety(SafetyError),
    /// The program (combined with the rules already installed) is not
    /// stratifiable — rejected at load time, before any fact is
    /// asserted or evaluation attempted.
    Stratify(StratifyError),
    /// Evaluation failed.
    Eval(EvalError),
    /// A constraint (or `fail()`) was violated; the workspace rolled
    /// back.
    Constraint(CheckError),
    /// The staged meta-fixpoint did not converge.
    MetaDivergence {
        /// Stages executed before giving up.
        stages: usize,
    },
}

impl fmt::Display for WsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsError::Parse(e) => write!(f, "{e}"),
            WsError::Safety(e) => write!(f, "{e}"),
            WsError::Stratify(e) => write!(f, "{e}"),
            WsError::Eval(e) => write!(f, "{e}"),
            WsError::Constraint(e) => write!(f, "{e}"),
            WsError::MetaDivergence { stages } => {
                write!(
                    f,
                    "meta-programming fixpoint did not converge after {stages} stages"
                )
            }
        }
    }
}

impl std::error::Error for WsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WsError::Parse(e) => Some(e),
            WsError::Safety(e) => Some(e),
            WsError::Stratify(e) => Some(e),
            WsError::Eval(e) => Some(e),
            WsError::Constraint(e) => Some(e),
            WsError::MetaDivergence { .. } => None,
        }
    }
}

impl From<ParseError> for WsError {
    fn from(e: ParseError) -> Self {
        WsError::Parse(e)
    }
}
impl From<StratifyError> for WsError {
    fn from(e: StratifyError) -> Self {
        WsError::Stratify(e)
    }
}
impl From<SafetyError> for WsError {
    fn from(e: SafetyError) -> Self {
        WsError::Safety(e)
    }
}
impl From<EvalError> for WsError {
    fn from(e: EvalError) -> Self {
        WsError::Eval(e)
    }
}
impl From<CheckError> for WsError {
    fn from(e: CheckError) -> Self {
        WsError::Constraint(e)
    }
}

/// Cap on meta-fixpoint stages (each stage installs at least one new
/// generated rule, so divergence means runaway code generation).
const MAX_META_STAGES: usize = 64;

/// How a retraction was repaired (see [`Workspace::retract_facts`]).
#[derive(Clone, Copy, Debug)]
pub enum RetractOutcome {
    /// No listed fact was a base fact — nothing changed.
    Noop,
    /// The database was repaired in place by DRed; the statistics count
    /// over-deleted and re-derived tuples.
    Incremental(lbtrust_datalog::dred::DredStats),
    /// Repair was deferred to the next evaluation (non-monotonic
    /// program or pending rule changes force a rebuild from base).
    Deferred,
}

/// One principal's context.
pub struct Workspace {
    me: Principal,
    meta: MetaPreds,
    builtins: Builtins,
    /// User rules grouped by tag (preludes are swappable by tag).
    rules: Vec<(String, Arc<Rule>)>,
    /// Constraints grouped by tag.
    constraints: Vec<(String, Constraint)>,
    /// Rules installed by code generation (cleared on rebuild).
    generated: Vec<Arc<Rule>>,
    /// Content ids of every installed rule.
    installed: HashSet<u64>,
    /// Facts asserted from outside (the EDB).
    base_facts: Vec<(Symbol, Tuple)>,
    db: Database,
    /// Whether rules/constraints changed since the last evaluate.
    dirty: bool,
    /// Incremental seeds: relation growth since the last evaluate.
    seeds: HashMap<Symbol, usize>,
    /// Accumulated evaluation statistics.
    stats: EvalStats,
    /// State as of the last successful evaluation; failed evaluations
    /// (constraint violations) roll back to it, which also undoes the
    /// offending assertions — the paper's "terminates with an error"
    /// transaction semantics.
    committed: Option<Snapshot>,
    /// Monotone database-change counter: bumped whenever the
    /// materialized database (or the base it will be rebuilt from) may
    /// differ from what a reader last saw — fact assertion, incremental
    /// retraction repair, rollback restore, and any evaluation that
    /// rebuilt, reflected, or derived. Never decremented, so snapshot
    /// publishers can compare epochs across time.
    epoch: u64,
}

/// A snapshot for rollback. Rules and constraints only ever grow
/// between snapshots, so their lengths suffice; base facts can also be
/// *removed* from the middle (certificate retraction), so the full
/// vector is captured.
#[derive(Clone)]
pub struct Snapshot {
    db: Database,
    rules_len: usize,
    constraints_len: usize,
    generated: Vec<Arc<Rule>>,
    installed: HashSet<u64>,
    base_facts: Vec<(Symbol, Tuple)>,
    dirty: bool,
    seeds: HashMap<Symbol, usize>,
}

impl Workspace {
    /// Creates an empty workspace for principal `me`. Type predicates
    /// (`int(X)`, `string(X)`, …) are pre-registered so Figure 1-style
    /// typing constraints work out of the box; cryptographic builtins
    /// are registered by the [`crate::System`] (they need key material).
    pub fn new(me: &str) -> Workspace {
        let mut builtins = Builtins::new();
        lbtrust_datalog::builtins::register_type_predicates(&mut builtins);
        Workspace {
            me: Symbol::intern(me),
            meta: MetaPreds::new(),
            builtins,
            rules: Vec::new(),
            constraints: Vec::new(),
            generated: Vec::new(),
            installed: HashSet::new(),
            base_facts: Vec::new(),
            db: Database::new(),
            dirty: false,
            seeds: HashMap::new(),
            stats: EvalStats::default(),
            committed: None,
            epoch: 0,
        }
    }

    /// The local principal.
    pub fn me(&self) -> Principal {
        self.me
    }

    /// Mutable access to the builtin registry (register crypto builtins
    /// etc. before loading rules).
    pub fn builtins_mut(&mut self) -> &mut Builtins {
        &mut self.builtins
    }

    /// The builtin registry.
    pub fn builtins(&self) -> &Builtins {
        &self.builtins
    }

    /// The materialized database (read-only view).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Accumulated evaluation statistics.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// The workspace's database-change epoch (see the field doc). Two
    /// equal epochs bracket a window in which the materialized database
    /// did not change, so derived state captured at the first read is
    /// still exact at the second.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Currently installed user + generated rules (for inspection).
    pub fn active_rules(&self) -> Vec<Arc<Rule>> {
        self.rules
            .iter()
            .map(|(_, r)| r.clone())
            .chain(self.generated.iter().cloned())
            .collect()
    }

    // ---- loading ----------------------------------------------------------

    /// Parses and installs a program under `tag`. The `me` keyword is
    /// resolved to this workspace's principal everywhere, including
    /// inside quoted code.
    ///
    /// Install-time checks run *before* any state changes: every rule
    /// must be safe (range-restricted), and the program combined with
    /// the rules already installed must be stratifiable. A rejected
    /// program leaves the workspace untouched, and the structured error
    /// cites the offending rule's source position.
    pub fn load(&mut self, tag: &str, src: &str) -> Result<(), WsError> {
        let program = parse_program(src)?;
        let me_sym = Symbol::intern("me");
        let mut pending: Vec<(Arc<Rule>, Span)> = Vec::with_capacity(program.rules.len());
        for (i, rule) in program.rules.iter().enumerate() {
            let span = program.rule_span(i);
            let rule = Arc::new(rule.clone().substitute_sym(me_sym, self.me));
            check_rule_at(&rule, &self.builtins, span)?;
            pending.push((rule, span));
        }
        // Stratify the combined rule set (already-installed rules carry
        // no source position; new rules cite theirs).
        let mut combined: Vec<Rule> = Vec::with_capacity(self.rules.len() + pending.len());
        let mut spans: Vec<Span> = Vec::with_capacity(combined.capacity());
        for (_, rule) in &self.rules {
            combined.push((**rule).clone());
            spans.push(Span::UNKNOWN);
        }
        for (rule, span) in &pending {
            combined.push((**rule).clone());
            spans.push(*span);
        }
        let builtins = &self.builtins;
        stratify_spanned(&combined, &spans, &|p| builtins.contains(p))?;

        for (rule, _) in pending {
            self.installed.insert(rule.content_id());
            self.rules.push((tag.to_string(), rule));
        }
        for constraint in program.constraints {
            let constraint = substitute_constraint(&constraint, me_sym, self.me);
            self.constraints.push((tag.to_string(), constraint));
        }
        self.dirty = true;
        Ok(())
    }

    /// Installs a program under `tag` on behalf of `owner`, recording
    /// `owner(rule, principal)` facts for every rule (§3.3). Combined
    /// with the `MAY_READ_OWNER`/`MAY_WRITE_OWNER` meta-constraints,
    /// the next evaluation rejects rules that read or write predicates
    /// the owner has no `access` grant for — and rolls this load back.
    pub fn load_owned(&mut self, tag: &str, src: &str, owner: Principal) -> Result<(), WsError> {
        let before = self.rules.len();
        self.load(tag, src)?;
        let owner_pred = Symbol::intern("owner");
        let new_rules: Vec<Arc<Rule>> = self.rules[before..]
            .iter()
            .map(|(_, r)| r.clone())
            .collect();
        for rule in new_rules {
            self.assert_fact(owner_pred, vec![Value::Quote(rule), Value::Sym(owner)]);
        }
        Ok(())
    }

    /// Removes every rule and constraint previously loaded under `tag`,
    /// then installs `src` in its place. This is the paper's two-rule
    /// authentication swap (§4.1.2).
    pub fn replace_tag(&mut self, tag: &str, src: &str) -> Result<(), WsError> {
        self.rules.retain(|(t, r)| {
            if t == tag {
                self.installed.remove(&r.content_id());
                false
            } else {
                true
            }
        });
        self.constraints.retain(|(t, _)| t != tag);
        self.dirty = true;
        self.load(tag, src)
    }

    // ---- facts -------------------------------------------------------------

    /// Asserts a base fact.
    pub fn assert_fact(&mut self, pred: Symbol, tuple: Tuple) {
        if self.db.contains(pred, &tuple) {
            // Already present (possibly derived); still record as base so
            // it survives a rebuild.
            self.base_facts.push((pred, tuple));
            return;
        }
        let mark = self.db.count(pred);
        self.base_facts.push((pred, tuple.clone()));
        self.db.insert(pred, tuple);
        self.seeds.entry(pred).or_insert(mark);
        self.epoch += 1;
    }

    /// Asserts a batch of base facts (one supporting copy each) — the
    /// certificate-import and log-replay reconciliation path, which
    /// asserts many `export`/`says` facts before one evaluation.
    pub fn assert_facts(&mut self, facts: &[(Symbol, Tuple)]) {
        for (pred, tuple) in facts {
            self.assert_fact(*pred, tuple.clone());
        }
    }

    /// Parses and asserts facts, e.g. `"neighbor(a,b). neighbor(b,c)."`.
    /// Quote arguments are allowed when they contain no pattern
    /// constructs (`important([| payload(1). |]).`).
    pub fn assert_src(&mut self, src: &str) -> Result<(), WsError> {
        let program = parse_program(src)?;
        let me_sym = Symbol::intern("me");
        for rule in &program.rules {
            let rule = rule.substitute_sym(me_sym, self.me);
            let fact = (rule.body.is_empty() && rule.agg.is_none() && rule.heads.len() == 1)
                .then(|| {
                    let head = &rule.heads[0];
                    let pred = head.pred.name()?;
                    let tuple: Option<Tuple> = head.all_args().map(term_to_ground_value).collect();
                    Some((pred, tuple?))
                })
                .flatten();
            let Some((pred, tuple)) = fact else {
                return Err(WsError::Parse(ParseError {
                    message: format!("'{rule}' is not a ground fact"),
                    line: 0,
                    col: 0,
                }));
            };
            self.assert_fact(pred, tuple);
        }
        if !program.constraints.is_empty() {
            return Err(WsError::Parse(ParseError {
                message: "assert_src takes facts only".into(),
                line: 0,
                col: 0,
            }));
        }
        Ok(())
    }

    /// Retracts a base fact (all copies). For positive programs the
    /// repair is incremental — the DRed delete-and-rederive algorithm
    /// (§3.1 "active rules are incrementally recomputed") — otherwise
    /// the next evaluation re-derives everything from the remaining base.
    pub fn retract_fact(&mut self, pred: Symbol, tuple: &[Value]) -> bool {
        let before = self.base_facts.len();
        self.base_facts.retain(|(p, t)| !(*p == pred && t == tuple));
        let removed = self.base_facts.len() != before;
        if !removed {
            return false;
        }
        self.repair_after_retraction(vec![(pred, tuple.to_vec())]);
        true
    }

    /// Retracts **one supporting copy** of each listed base fact, then
    /// repairs the database in a single DRed pass for every fact whose
    /// last copy disappeared. Duplicated base facts model multiple live
    /// credentials asserting the same conclusion: the conclusion stands
    /// while any copy remains (the certificate store's retraction path
    /// relies on this).
    pub fn retract_facts(&mut self, facts: &[(Symbol, Tuple)]) -> RetractOutcome {
        let mut gone: Vec<(Symbol, Tuple)> = Vec::new();
        for (pred, tuple) in facts {
            let Some(pos) = self
                .base_facts
                .iter()
                .position(|(p, t)| p == pred && t == tuple)
            else {
                continue;
            };
            self.base_facts.remove(pos);
            let still_supported = self.base_facts.iter().any(|(p, t)| p == pred && t == tuple);
            if !still_supported {
                gone.push((*pred, tuple.clone()));
            }
        }
        if gone.is_empty() {
            return RetractOutcome::Noop;
        }
        self.repair_after_retraction(gone)
    }

    /// Repairs derived state after `retracted` left the EDB: the DRed
    /// incremental path when the program admits it, otherwise marking
    /// the workspace for a full rebuild on the next evaluation.
    fn repair_after_retraction(&mut self, retracted: Vec<(Symbol, Tuple)>) -> RetractOutcome {
        if self.dirty || self.non_monotonic() {
            self.dirty = true;
            self.sync_committed_after_deferred_retraction();
            return RetractOutcome::Deferred;
        }
        // Incremental path. Failure (e.g. a generated pattern construct
        // the DRed fragment rejects) falls back to full recomputation.
        let rules: Vec<Rule> = self
            .rules
            .iter()
            .map(|(_, r)| r.as_ref().clone())
            .chain(self.generated.iter().map(|r| r.as_ref().clone()))
            .collect();
        let outcome =
            lbtrust_datalog::dred::retract(&rules, &mut self.db, &self.builtins, &retracted);
        match outcome {
            Ok(stats) => {
                self.seeds.clear();
                self.epoch += 1;
                // The repaired state is the new committed baseline.
                self.committed = Some(self.snapshot());
                RetractOutcome::Incremental(stats)
            }
            Err(_) => {
                self.dirty = true;
                self.sync_committed_after_deferred_retraction();
                RetractOutcome::Deferred
            }
        }
    }

    /// Keeps the committed rollback baseline honest when a retraction's
    /// repair is deferred: the snapshot's base facts must not resurrect
    /// the retracted copies if a later failed evaluation restores it,
    /// and the restored state must rebuild from base (its materialized
    /// db still contains the stale derivations).
    fn sync_committed_after_deferred_retraction(&mut self) {
        if let Some(snap) = &mut self.committed {
            snap.base_facts = self.base_facts.clone();
            snap.dirty = true;
        }
    }

    // ---- queries -----------------------------------------------------------

    /// The tuples of `pred`, cloned in insertion order.
    pub fn tuples(&self, pred: Symbol) -> Vec<Tuple> {
        self.db
            .relation(pred)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Whether `pred(tuple)` holds.
    pub fn holds(&self, pred: Symbol, tuple: &[Value]) -> bool {
        self.db.contains(pred, tuple)
    }

    /// Whether the fact written as `src` (e.g. `"access(alice,f,read)"`)
    /// holds.
    pub fn holds_src(&self, src: &str) -> Result<bool, WsError> {
        let atom = lbtrust_datalog::parse_atom(src)?;
        let atom = atom.substitute_sym(Symbol::intern("me"), self.me);
        let pred = atom.pred.name().ok_or(WsError::Parse(ParseError {
            message: "pattern queries not supported here".into(),
            line: 0,
            col: 0,
        }))?;
        let tuple: Option<Tuple> = atom.all_args().map(|t| t.as_val().cloned()).collect();
        match tuple {
            Some(t) => Ok(self.db.contains(pred, &t)),
            None => Ok(self.db.relation(pred).is_some_and(|rel| {
                rel.iter().any(|t| {
                    !lbtrust_datalog::Bindings::new()
                        .match_tuple(&atom, t)
                        .is_empty()
                })
            })),
        }
    }

    /// Serializes the workspace's rules, constraints and base facts as
    /// LBTrust source text. Loading the result into a fresh workspace
    /// (rules via [`Workspace::load`], facts via
    /// [`Workspace::assert_src`]) reproduces the same conclusions —
    /// canonical text is the durability format, exactly as it is the
    /// wire format.
    pub fn export_program(&self) -> String {
        let mut out = String::new();
        out.push_str("// constraints\n");
        for (tag, c) in &self.constraints {
            out.push_str(&format!("// tag: {tag}\n{c}\n"));
        }
        out.push_str("// rules\n");
        for (tag, r) in &self.rules {
            out.push_str(&format!("// tag: {tag}\n{r}\n"));
        }
        out.push_str("// base facts\n");
        for (pred, tuple) in &self.base_facts {
            let args: Vec<String> = tuple.iter().map(ToString::to_string).collect();
            out.push_str(&format!("{pred}({}).\n", args.join(",")));
        }
        out
    }

    /// Renders the named predicates as a table — the stand-in for the
    /// paper's §9 "visualization tool used in LogicBlox to display a
    /// table of the values of various predicates".
    pub fn dump(&self, preds: &[&str]) -> String {
        let mut out = String::new();
        for name in preds {
            let pred = Symbol::intern(name);
            out.push_str(&format!("{} @ {}:\n", name, self.me));
            let tuples = self.tuples(pred);
            if tuples.is_empty() {
                out.push_str("  (none)\n");
            }
            for t in tuples {
                let row: Vec<String> = t.iter().map(ToString::to_string).collect();
                out.push_str(&format!("  {}({})\n", name, row.join(", ")));
            }
        }
        out
    }

    /// Goal-directed query via the magic-sets rewrite (§7's bridge from
    /// access-control-style top-down evaluation to bottom-up): answers
    /// `goal_src` (e.g. `"access(alice, O, read)"`) against the current
    /// rules and base facts *without* materializing unrelated
    /// conclusions. Aggregate rules are not supported on the goal's
    /// dependency path.
    pub fn query_goal(&self, goal_src: &str) -> Result<Vec<Tuple>, WsError> {
        let atom = lbtrust_datalog::parse_atom(goal_src)?;
        let atom = atom.substitute_sym(Symbol::intern("me"), self.me);
        let rules: Vec<Rule> = self
            .rules
            .iter()
            .map(|(_, r)| r.as_ref().clone())
            .chain(self.generated.iter().map(|r| r.as_ref().clone()))
            .filter(|r| !r.is_pattern())
            .collect();
        let (answers, _) =
            lbtrust_datalog::magic::query_magic(&rules, &self.db, &atom, &self.builtins)?;
        Ok(answers)
    }

    /// Explains how a fact was derived (provenance, §7 of the paper).
    /// Returns `None` if the fact does not hold.
    pub fn explain(&self, fact_src: &str) -> Result<Option<String>, WsError> {
        Ok(self.explain_proof(fact_src)?.map(|proof| proof.render()))
    }

    /// [`Workspace::explain`], but returning the structured proof tree
    /// instead of its rendering — callers that need the derivation's
    /// *premises* (e.g. the decision journal collecting the `says`
    /// facts an authorization rests on) walk this.
    pub fn explain_proof(
        &self,
        fact_src: &str,
    ) -> Result<Option<lbtrust_datalog::provenance::Proof>, WsError> {
        let atom = lbtrust_datalog::parse_atom(fact_src)?;
        let atom = atom.substitute_sym(Symbol::intern("me"), self.me);
        let pred = atom.pred.name().ok_or(WsError::Parse(ParseError {
            message: "explain takes a concrete fact".into(),
            line: 0,
            col: 0,
        }))?;
        let tuple: Option<Tuple> = atom.all_args().map(|t| t.as_val().cloned()).collect();
        let Some(tuple) = tuple else {
            return Err(WsError::Parse(ParseError {
                message: "explain takes a ground fact".into(),
                line: 0,
                col: 0,
            }));
        };
        let rules: Vec<Rule> = self
            .rules
            .iter()
            .map(|(_, r)| r.as_ref().clone())
            .chain(self.generated.iter().map(|r| r.as_ref().clone()))
            .collect();
        Ok(lbtrust_datalog::provenance::explain(
            &rules,
            &self.db,
            &self.builtins,
            pred,
            &tuple,
        ))
    }

    // ---- evaluation ---------------------------------------------------------

    /// Takes a rollback snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            db: self.db.clone(),
            rules_len: self.rules.len(),
            constraints_len: self.constraints.len(),
            generated: self.generated.clone(),
            installed: self.installed.clone(),
            base_facts: self.base_facts.clone(),
            dirty: self.dirty,
            seeds: self.seeds.clone(),
        }
    }

    /// Restores a snapshot taken earlier.
    pub fn restore(&mut self, snap: Snapshot) {
        self.db = snap.db;
        self.rules.truncate(snap.rules_len);
        self.constraints.truncate(snap.constraints_len);
        self.generated = snap.generated;
        self.installed = snap.installed;
        self.base_facts = snap.base_facts;
        self.dirty = snap.dirty;
        self.seeds = snap.seeds;
        // A rollback changes the database; the epoch stays monotone (it
        // counts changes, it does not identify states).
        self.epoch += 1;
    }

    /// Runs `f` transactionally: on error the workspace is rolled back to
    /// its state before the call.
    pub fn transaction<T>(
        &mut self,
        f: impl FnOnce(&mut Workspace) -> Result<T, WsError>,
    ) -> Result<T, WsError> {
        let snap = self.snapshot();
        match f(self) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.restore(snap);
                Err(e)
            }
        }
    }

    /// Whether any installed rule uses negation or aggregation (in which
    /// case incremental addition is unsound and evaluation rebuilds from
    /// base facts).
    fn non_monotonic(&self) -> bool {
        self.rules
            .iter()
            .map(|(_, r)| r.as_ref())
            .chain(self.generated.iter().map(|r| r.as_ref()))
            .any(|r| {
                r.agg.is_some()
                    || r.body
                        .iter()
                        .any(|i| matches!(i, BodyItem::Lit { negated: true, .. }))
            })
    }

    /// Resets the database to base facts plus reflections of the current
    /// rule set (user and generated). Generated rules are kept — callers
    /// that invalidated them clear `generated` first.
    fn reset_db(&mut self) {
        self.db = Database::new();
        for (pred, tuple) in &self.base_facts {
            self.db.insert(*pred, tuple.clone());
        }
        let rules: Vec<Arc<Rule>> = self
            .rules
            .iter()
            .map(|(_, r)| r.clone())
            .chain(self.generated.iter().cloned())
            .collect();
        for rule in rules {
            self.reflect_rule(&rule);
        }
        self.seeds.clear();
    }

    fn reflect_rule(&mut self, rule: &Rule) {
        reflect_into(rule, &self.meta, &mut self.db);
        // Installed rules appear in the `active` table (§3.3), which both
        // enables reflection-style rules like `pull0` and makes code
        // generation idempotent.
        self.db
            .insert(self.meta.active, vec![Value::Quote(Arc::new(rule.clone()))]);
    }

    /// Evaluates to a (staged) fixpoint and checks constraints. On
    /// failure (constraint violation, unsafe generated rule, …) the
    /// workspace rolls back to the state after its last *successful*
    /// evaluation, undoing the offending assertions.
    pub fn evaluate(&mut self) -> Result<EvalStats, WsError> {
        // Captured before `evaluate_inner` clears `dirty`: a rebuild
        // replaces the database wholesale, and the first evaluation's
        // reflection fast path inserts `active` facts — both change the
        // database even when zero tuples are "derived".
        let was_rebuild = self.dirty || self.non_monotonic();
        let maybe_reflect =
            !was_rebuild && self.db.count(self.meta.active) == 0 && !self.rules.is_empty();
        match self.evaluate_inner() {
            Ok(stats) => {
                if was_rebuild || maybe_reflect || stats.derived > 0 {
                    self.epoch += 1;
                }
                self.committed = Some(self.snapshot());
                Ok(stats)
            }
            Err(e) => {
                match self.committed.clone() {
                    Some(snap) => self.restore(snap),
                    None => {
                        // Nothing ever succeeded: reset to an empty,
                        // facts-free state with the loaded rules intact.
                        self.base_facts.clear();
                        self.generated.clear();
                        self.db = Database::new();
                        self.seeds.clear();
                        self.dirty = true;
                        self.epoch += 1;
                    }
                }
                Err(e)
            }
        }
    }

    fn evaluate_inner(&mut self) -> Result<EvalStats, WsError> {
        // `dirty` (rules changed / retraction) invalidates generated
        // rules and the whole database; non-monotonic programs must also
        // re-derive from base every time, but keep their generated rules
        // (monotone extraction re-finds them anyway).
        if self.dirty {
            self.generated.clear();
            self.installed = self.rules.iter().map(|(_, r)| r.content_id()).collect();
        }
        let mut fresh = self.dirty || self.non_monotonic();
        self.dirty = false;

        if !fresh && self.db.count(self.meta.active) == 0 && !self.rules.is_empty() {
            // Fast path, first evaluation: materialize reflections.
            let rules: Vec<Arc<Rule>> = self.rules.iter().map(|(_, r)| r.clone()).collect();
            for rule in rules {
                self.reflect_rule(&rule);
            }
        }

        let mut total = EvalStats::default();
        let mut use_seeds = !fresh && !self.seeds.is_empty();
        for stage in 0.. {
            if stage >= MAX_META_STAGES {
                return Err(WsError::MetaDivergence { stages: stage });
            }
            if fresh {
                self.reset_db();
            }
            let rules: Vec<Rule> = self
                .rules
                .iter()
                .map(|(_, r)| r.as_ref().clone())
                .chain(self.generated.iter().map(|r| r.as_ref().clone()))
                .collect();
            let engine = Engine::new(&rules, &self.builtins);
            let stats = if use_seeds {
                let seeds: Vec<(Symbol, usize)> =
                    self.seeds.iter().map(|(&p, &m)| (p, m)).collect();
                engine.run_incremental(&mut self.db, &seeds)?
            } else {
                engine.run(&mut self.db)?
            };
            self.seeds.clear();
            use_seeds = false;
            total.rounds += stats.rounds;
            total.derived += stats.derived;
            total.rule_evals += stats.rule_evals;

            // Code generation: install new rules derived into
            // active/rule, then run another stage (§3.3: "those new facts
            // turn into a new rule which must itself be evaluated").
            let me_sym = Symbol::intern("me");
            let mut new_rules = Vec::new();
            for quote in generated_rules(&self.db, &self.meta) {
                let resolved = quote.substitute_sym(me_sym, self.me);
                let id = resolved.content_id();
                if !self.installed.contains(&id) && !resolved.is_pattern() {
                    new_rules.push(Arc::new(resolved));
                }
            }
            if new_rules.is_empty() {
                break;
            }
            for rule in new_rules {
                check_rule(&rule, &self.builtins)?;
                self.installed.insert(rule.content_id());
                if !fresh {
                    self.reflect_rule(&rule);
                }
                // A generated rule with negation/aggregation switches the
                // remaining stages to from-scratch mode so its
                // non-monotonic conclusions are sound.
                if rule.agg.is_some()
                    || rule
                        .body
                        .iter()
                        .any(|i| matches!(i, BodyItem::Lit { negated: true, .. }))
                {
                    fresh = true;
                }
                self.generated.push(rule);
            }
        }

        // Constraint checking (schema constraints, meta-constraints, and
        // the fail() predicate).
        check_fail(&self.db)?;
        let constraints: Vec<Constraint> =
            self.constraints.iter().map(|(_, c)| c.clone()).collect();
        check_constraints(&constraints, &self.db, &self.builtins)?;
        self.stats.rounds += total.rounds;
        self.stats.derived += total.derived;
        self.stats.rule_evals += total.rule_evals;
        Ok(total)
    }
}

// The parallel quiescence engine moves exclusive workspace references
// onto `std::thread::scope` workers. This assertion turns an
// accidentally non-`Send` field added later (an `Rc`, a raw pointer)
// into a compile error here, instead of a borrow-check maze inside the
// shard plumbing.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Workspace>();
};

/// Converts a term to a ground value, accepting concrete quotes (code
/// without pattern constructs) alongside ordinary values.
fn term_to_ground_value(term: &lbtrust_datalog::Term) -> Option<Value> {
    use lbtrust_datalog::Term;
    match term {
        Term::Val(v) => Some(v.clone()),
        Term::Quote(r) if !r.is_pattern() => Some(Value::Quote(r.clone())),
        _ => None,
    }
}

/// `me`-resolution for constraints.
fn substitute_constraint(c: &Constraint, from: Symbol, to: Symbol) -> Constraint {
    // Reuse the rule substitution by packing the constraint into a rule
    // body plus a formula walk.
    use lbtrust_datalog::ast::Formula;
    fn subst_formula(f: &Formula, from: Symbol, to: Symbol) -> Formula {
        match f {
            Formula::Item(item) => Formula::Item(subst_item(item, from, to)),
            Formula::And(parts) => {
                Formula::And(parts.iter().map(|p| subst_formula(p, from, to)).collect())
            }
            Formula::Or(parts) => {
                Formula::Or(parts.iter().map(|p| subst_formula(p, from, to)).collect())
            }
            Formula::Not(inner) => Formula::Not(Box::new(subst_formula(inner, from, to))),
        }
    }
    fn subst_item(item: &BodyItem, from: Symbol, to: Symbol) -> BodyItem {
        let carrier = Rule {
            heads: Vec::new(),
            body: vec![item.clone()],
            agg: None,
        };
        carrier.substitute_sym(from, to).body.remove(0)
    }
    Constraint {
        body: c.body.iter().map(|i| subst_item(i, from, to)).collect(),
        requires: subst_formula(&c.requires, from, to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn vals(parts: &[&str]) -> Tuple {
        parts.iter().map(|p| Value::sym(p)).collect()
    }

    #[test]
    fn load_and_evaluate_simple_policy() {
        let mut ws = Workspace::new("alice");
        ws.load("policy", "access(P,file1,read) <- good(P).")
            .unwrap();
        ws.assert_src("good(carol). good(dave).").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds_src("access(carol,file1,read)").unwrap());
        assert!(ws.holds_src("access(dave,file1,read)").unwrap());
        assert!(!ws.holds_src("access(eve,file1,read)").unwrap());
    }

    #[test]
    fn me_resolution() {
        let mut ws = Workspace::new("alice");
        ws.load("p", "mine(me).").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("mine"), &vals(&["alice"])));
    }

    #[test]
    fn incremental_assertions() {
        let mut ws = Workspace::new("w");
        ws.load(
            "tc",
            "reach(X,Y) <- edge(X,Y). reach(X,Z) <- reach(X,Y), edge(Y,Z).",
        )
        .unwrap();
        ws.assert_src("edge(a,b).").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("reach"), &vals(&["a", "b"])));
        // Incremental: new edge extends reach without a rebuild.
        ws.assert_src("edge(b,c).").unwrap();
        let stats = ws.evaluate().unwrap();
        assert!(ws.holds(sym("reach"), &vals(&["a", "c"])));
        assert!(stats.derived >= 2);
    }

    #[test]
    fn constraint_violation_rolls_back() {
        let mut ws = Workspace::new("w");
        ws.load("schema", "access(P,O,M) -> principal(P).").unwrap();
        ws.assert_src("principal(alice).").unwrap();
        ws.assert_fact(sym("access"), vals(&["alice", "f", "read"]));
        ws.evaluate().unwrap();
        // A violating fact rolls everything back.
        ws.assert_fact(sym("access"), vals(&["mallory", "f", "read"]));
        let err = ws.evaluate().unwrap_err();
        assert!(matches!(err, WsError::Constraint(_)));
        // The poisoned fact is gone after rollback...
        assert!(!ws.holds(sym("access"), &vals(&["mallory", "f", "read"])));
        // ...and the workspace still evaluates cleanly.
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("access"), &vals(&["alice", "f", "read"])));
    }

    #[test]
    fn fail_rule_rolls_back() {
        let mut ws = Workspace::new("w");
        ws.load("schema", "fail() <- bad(X).").unwrap();
        ws.evaluate().unwrap();
        ws.assert_src("bad(thing).").unwrap();
        assert!(ws.evaluate().is_err());
        assert!(!ws.holds(sym("bad"), &vals(&["thing"])));
    }

    #[test]
    fn code_generation_via_active() {
        // A rule that activates another rule when a fact appears
        // (simplified del1).
        let mut ws = Workspace::new("alice");
        ws.load(
            "deleg",
            "active([| trusted(X) <- vouched(U2,X). |]) <- delegates(me,U2).",
        )
        .unwrap();
        ws.assert_src("delegates(alice,bob). vouched(bob,carol).")
            .unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("trusted"), &vals(&["carol"])));
        // The generated rule shows up among active rules.
        assert!(ws
            .active_rules()
            .iter()
            .any(|r| r.to_string().contains("trusted(X)")));
    }

    #[test]
    fn generated_rules_cascade() {
        // Generation that generates again (two stages).
        let mut ws = Workspace::new("w");
        ws.load(
            "gen",
            "active([| active([| final(done). |]) <- go2(). |]) <- go1().",
        )
        .unwrap();
        ws.assert_src("go1(). go2().").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("final"), &vals(&["done"])));
    }

    #[test]
    fn replace_tag_swaps_rules() {
        let mut ws = Workspace::new("w");
        ws.load("auth", "mode(rsa) <- on().").unwrap();
        ws.assert_src("on().").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("mode"), &vals(&["rsa"])));
        ws.replace_tag("auth", "mode(hmac) <- on().").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("mode"), &vals(&["hmac"])));
        // The old derivation is gone after the rebuild.
        assert!(!ws.holds(sym("mode"), &vals(&["rsa"])));
    }

    #[test]
    fn unstratifiable_program_rejected_at_load() {
        // Negation through recursion is refused at install time — before
        // any rule or constraint is added — and the error cites the
        // offending rule's source position.
        let mut ws = Workspace::new("w");
        ws.load("base", "win(X) <- move(X,Y), lose(Y).").unwrap();
        let err = ws.load("bad", "lose(X) <- pos(X), !win(X).").unwrap_err();
        match &err {
            WsError::Stratify(e) => {
                assert!(e.negation);
                assert_eq!(e.span, lbtrust_datalog::Span::new(1, 1));
            }
            other => panic!("expected Stratify, got {other}"),
        }
        // Structured error chain is intact.
        assert!(std::error::Error::source(&err).is_some());
        // The rejected program left no trace: the workspace still
        // evaluates, and only the first program's rule is installed.
        assert_eq!(ws.active_rules().len(), 1);
        ws.assert_src("move(a,b). pos(a).").unwrap();
        ws.evaluate().unwrap();
    }

    #[test]
    fn unsafe_rule_rejected_at_load_with_span() {
        let mut ws = Workspace::new("w");
        let err = ws
            .load("bad", "ok(X) <- good(Y).\nbad(X) <- !seen(X).")
            .unwrap_err();
        match &err {
            WsError::Safety(e) => {
                assert_eq!(e.span(), lbtrust_datalog::Span::new(1, 1));
            }
            other => panic!("expected Safety, got {other}"),
        }
        assert_eq!(ws.active_rules().len(), 0);
    }

    #[test]
    fn retraction_full_recompute() {
        let mut ws = Workspace::new("w");
        ws.load("p", "q(X) <- p(X).").unwrap();
        ws.assert_src("p(a). p(b).").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("q"), &vals(&["a"])));
        assert!(ws.retract_fact(sym("p"), &vals(&["a"])));
        ws.evaluate().unwrap();
        assert!(!ws.holds(sym("q"), &vals(&["a"])));
        assert!(ws.holds(sym("q"), &vals(&["b"])));
    }

    #[test]
    fn retraction_incremental_repair_is_immediate() {
        // Positive program: the DRed path repairs the database inside
        // retract_fact, before any evaluate().
        let mut ws = Workspace::new("w");
        ws.load(
            "tc",
            "reach(X,Y) <- edge(X,Y). reach(X,Z) <- reach(X,Y), edge(Y,Z).",
        )
        .unwrap();
        ws.assert_src("edge(a,b). edge(b,c).").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("reach"), &vals(&["a", "c"])));
        assert!(ws.retract_fact(sym("edge"), &vals(&["b", "c"])));
        // No evaluate() needed: DRed already repaired.
        assert!(!ws.holds(sym("reach"), &vals(&["a", "c"])));
        assert!(!ws.holds(sym("reach"), &vals(&["b", "c"])));
        assert!(ws.holds(sym("reach"), &vals(&["a", "b"])));
        // Later evaluation keeps the repaired state consistent.
        ws.assert_src("edge(c,d).").unwrap();
        ws.evaluate().unwrap();
        assert!(!ws.holds(sym("reach"), &vals(&["a", "d"])));
        assert!(ws.holds(sym("reach"), &vals(&["c", "d"])));
    }

    #[test]
    fn negation_forces_rebuild_correctness() {
        let mut ws = Workspace::new("w");
        ws.load("p", "ok(X) <- candidate(X), !banned(X).").unwrap();
        ws.assert_src("candidate(a).").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("ok"), &vals(&["a"])));
        // Banning later must retract the conclusion.
        ws.assert_src("banned(a).").unwrap();
        ws.evaluate().unwrap();
        assert!(!ws.holds(sym("ok"), &vals(&["a"])));
    }

    #[test]
    fn deferred_retraction_survives_constraint_rollback() {
        // Non-monotonic program: retraction repair is deferred to the
        // next evaluation. A constraint violation in between must not
        // resurrect the retracted fact through the rollback snapshot.
        let mut ws = Workspace::new("w");
        ws.load("p", "ok(X) <- candidate(X), !banned(X).").unwrap();
        ws.load("schema", "poison(X) -> never(X).").unwrap();
        ws.assert_src("candidate(a). candidate(b).").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("ok"), &vals(&["a"])));

        // Deferred retraction (negation forces rebuild-on-evaluate).
        let outcome = ws.retract_facts(&[(sym("candidate"), vals(&["a"]))]);
        assert!(matches!(outcome, RetractOutcome::Deferred));

        // A poisoned assertion rolls the workspace back…
        ws.assert_fact(sym("poison"), vals(&["x"]));
        assert!(ws.evaluate().is_err());
        // …but the retracted fact must stay gone after the rollback.
        ws.evaluate().unwrap();
        assert!(
            !ws.holds(sym("ok"), &vals(&["a"])),
            "rollback must not resurrect a retracted base fact"
        );
        assert!(ws.holds(sym("ok"), &vals(&["b"])));
        assert!(!ws.holds(sym("poison"), &vals(&["x"])));
    }

    #[test]
    fn one_copy_retraction_keeps_duplicated_support() {
        let mut ws = Workspace::new("w");
        ws.load("p", "q(X) <- p(X).").unwrap();
        // Two credentials assert the same fact.
        ws.assert_fact(sym("p"), vals(&["a"]));
        ws.assert_fact(sym("p"), vals(&["a"]));
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("q"), &vals(&["a"])));
        // Removing one copy keeps the conclusion…
        ws.retract_facts(&[(sym("p"), vals(&["a"]))]);
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("q"), &vals(&["a"])));
        // …removing the last copy retracts it.
        ws.retract_facts(&[(sym("p"), vals(&["a"]))]);
        ws.evaluate().unwrap();
        assert!(!ws.holds(sym("q"), &vals(&["a"])));
    }

    #[test]
    fn meta_constraint_blocks_unauthorized_generated_rule() {
        // mayWrite-style meta-constraint: only rules writing predicates
        // the owner may write are admissible. Here: everything said to me
        // activates (says1), but writes to `secret` are forbidden.
        let mut ws = Workspace::new("alice");
        ws.load("says", "active(R) <- says(_,me,R).").unwrap();
        ws.load("authz", "active([| secret(T*) <- A*. |]) -> never().")
            .unwrap();
        // A benign said rule is fine.
        ws.assert_fact(
            sym("says"),
            vec![
                Value::sym("bob"),
                Value::sym("alice"),
                Value::Quote(Arc::new(
                    lbtrust_datalog::parse_rule("note(hello).").unwrap(),
                )),
            ],
        );
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("note"), &vals(&["hello"])));
        // A rule writing `secret` violates the meta-constraint and is
        // rolled back.
        ws.assert_fact(
            sym("says"),
            vec![
                Value::sym("bob"),
                Value::sym("alice"),
                Value::Quote(Arc::new(
                    lbtrust_datalog::parse_rule("secret(stolen).").unwrap(),
                )),
            ],
        );
        assert!(ws.evaluate().is_err());
        assert!(!ws.holds(sym("secret"), &vals(&["stolen"])));
    }

    #[test]
    fn load_owned_enforces_read_authorization() {
        let mut ws = Workspace::new("w");
        ws.load("authz", lbtrust_metamodel_free_authz()).unwrap();
        // u1 may read budget.
        ws.assert_src("access(u1, budget, read).").unwrap();
        ws.load_owned("p1", "spend(X) <- budget(X).", sym("u1"))
            .unwrap();
        ws.evaluate().unwrap();
        // u2 may not: the load is rolled back on evaluation.
        ws.load_owned("p2", "leak(X) <- budget(X).", sym("u2"))
            .unwrap();
        assert!(ws.evaluate().is_err());
        assert!(!ws
            .active_rules()
            .iter()
            .any(|r| r.to_string().contains("leak")));
        // The workspace still works afterwards.
        ws.assert_src("budget(500).").unwrap();
        ws.evaluate().unwrap();
        assert!(ws.holds(sym("spend"), &[Value::Int(500)]));
    }

    /// The §3.3 owner/access read meta-constraint source.
    fn lbtrust_metamodel_free_authz() -> &'static str {
        crate::authz::MAY_READ_OWNER
    }

    #[test]
    fn export_program_roundtrips() {
        let mut ws = Workspace::new("w");
        ws.load(
            "tc",
            "reach(X,Y) <- edge(X,Y). reach(X,Z) <- reach(X,Y), edge(Y,Z).",
        )
        .unwrap();
        ws.load("schema", "edge(X,Y) -> node(X), node(Y).").unwrap();
        ws.assert_src("node(a). node(b). node(c). edge(a,b). edge(b,c).")
            .unwrap();
        ws.evaluate().unwrap();

        // Restore into a fresh workspace from the exported text.
        let text = ws.export_program();
        let mut restored = Workspace::new("w2");
        // Rules+constraints parse as a program; facts are the fact lines.
        let (defs, facts): (Vec<&str>, Vec<&str>) = text
            .lines()
            .filter(|l| !l.starts_with("//") && !l.is_empty())
            .partition(|l| l.contains("<-") || l.contains("->"));
        restored.load("restored", &defs.join("\n")).unwrap();
        restored.assert_src(&facts.join("\n")).unwrap();
        restored.evaluate().unwrap();
        assert_eq!(
            ws.tuples(sym("reach")).len(),
            restored.tuples(sym("reach")).len()
        );
        for t in ws.tuples(sym("reach")) {
            assert!(restored.holds(sym("reach"), &t));
        }
    }

    #[test]
    fn dump_renders_tables() {
        let mut ws = Workspace::new("alice");
        ws.assert_src("permission(alice, f1, read).").unwrap();
        ws.evaluate().unwrap();
        let text = ws.dump(&["permission", "nothing"]);
        assert!(text.contains("permission @ alice"), "{text}");
        assert!(text.contains("permission(alice, f1, read)"), "{text}");
        assert!(text.contains("(none)"), "{text}");
    }

    #[test]
    fn query_goal_answers_without_materializing() {
        let mut ws = Workspace::new("w");
        ws.load(
            "policy",
            "access(P,O,M) <- owns(P,O), mode(M).\n\
             access(P,O,M) <- delegated(Q,P), access(Q,O,M).",
        )
        .unwrap();
        ws.assert_src("owns(alice,f1). owns(bob,f2). mode(read). delegated(alice,carol).")
            .unwrap();
        // No evaluate() call: the goal query works off base facts.
        let answers = ws.query_goal("access(carol, O, read)").unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][1], Value::sym("f1"));
        // The access relation itself was not materialized.
        assert_eq!(ws.db().count(sym("access")), 0);
    }

    #[test]
    fn explain_renders_derivation() {
        let mut ws = Workspace::new("w");
        ws.load("policy", "grant(P,O) <- owns(P,O), vetted(P).")
            .unwrap();
        ws.assert_src("owns(alice,f1). vetted(alice).").unwrap();
        ws.evaluate().unwrap();
        let proof = ws.explain("grant(alice,f1)").unwrap().expect("holds");
        assert!(proof.contains("grant(alice,f1)"), "{proof}");
        assert!(proof.contains("[fact]"), "{proof}");
        assert!(proof.contains("owns(alice,f1)"), "{proof}");
        // Absent facts have no explanation.
        assert!(ws.explain("grant(bob,f1)").unwrap().is_none());
    }

    #[test]
    fn transaction_rolls_back_on_error() {
        let mut ws = Workspace::new("w");
        ws.load("p", "q(X) <- p(X).").unwrap();
        ws.assert_src("p(a).").unwrap();
        ws.evaluate().unwrap();
        let result: Result<(), WsError> = ws.transaction(|w| {
            w.assert_src("p(b).").unwrap();
            Err(WsError::MetaDivergence { stages: 0 })
        });
        assert!(result.is_err());
        ws.evaluate().unwrap();
        assert!(!ws.holds(sym("q"), &vals(&["b"])));
    }
}
