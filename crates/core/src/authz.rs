//! Authorization meta-constraints (§3.3 and §4.1 of the paper):
//! restricting which rules principals may install based on the
//! predicates those rules read and write.

/// The `owner`/`access` schema of §3.3.
pub const OWNER_SCHEMA: &str = "\
    owner(R,P) -> prin(P).\n\
    access(U,P,M) -> prin(U).\n";

/// The read meta-constraint of §3.3: "a principal may only read
/// predicates to which they have been granted access" — every owned rule
/// whose body reads predicate `P` needs `access(U,P,read)`.
pub const MAY_READ_OWNER: &str = "owner([| A <- P(T2*), A*. |], U) -> access(U,P,read).\n";

/// The write meta-constraint: every owned rule whose head writes `P`
/// needs `access(U,P,write)`.
pub const MAY_WRITE_OWNER: &str = "owner([| P(T*) <- A*. |], U) -> access(U,P,write).\n";

/// The `says`-based authorization constraints of §4.1: rules said to me
/// may only read/write what their sender is allowed to.
pub const MAY_READ_SAYS: &str = "says(U,me,[| A <- P(T2*), A*. |]) -> mayRead(U,P).\n";

/// See [`MAY_READ_SAYS`].
pub const MAY_WRITE_SAYS: &str = "says(U,me,[| P(T*) <- A*. |]) -> mayWrite(U,P).\n";

#[cfg(test)]
mod tests {
    use super::*;
    use lbtrust_datalog::parse_program;

    #[test]
    fn sources_parse() {
        for src in [
            OWNER_SCHEMA,
            MAY_READ_OWNER,
            MAY_WRITE_OWNER,
            MAY_READ_SAYS,
            MAY_WRITE_SAYS,
        ] {
            let p = parse_program(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert!(!p.constraints.is_empty());
        }
    }
}
