//! The multi-principal runtime: workspaces + keys + simulated network.
//!
//! A [`System`] plays the role of the paper's deployed environment
//! (§3.5): each principal owns a workspace (its *context*), principals
//! are placed on physical nodes (the `loc` mapping; one or many
//! principals per node), and `export` partitions are drained into the
//! network and imported on delivery. `run_to_quiescence` alternates local
//! fixpoints with message delivery until nothing moves — the
//! distributed fixpoint of the declarative-networking execution model.

use crate::auth::{register_crypto_builtins, AuthScheme};
use crate::principal::{
    rsa_priv_handle, rsa_pub_handle, shared_keys, shared_secret_handle, Principal, SharedKeys,
};
use crate::says::SAYS_DECLS;
use crate::workspace::{Workspace, WsError};
use lbtrust_datalog::{Symbol, Tuple, Value};
use lbtrust_net::{NetworkConfig, NodeId, SimNetwork, WireMessage};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// System-level errors.
#[derive(Debug)]
pub enum SysError {
    /// No such principal registered.
    UnknownPrincipal(Principal),
    /// A workspace operation failed.
    Workspace(WsError),
    /// The distributed fixpoint did not quiesce within the step budget.
    NoQuiescence {
        /// Steps executed.
        steps: usize,
    },
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysError::UnknownPrincipal(p) => write!(f, "unknown principal {p}"),
            SysError::Workspace(e) => write!(f, "{e}"),
            SysError::NoQuiescence { steps } => {
                write!(f, "system did not quiesce after {steps} steps")
            }
        }
    }
}

impl std::error::Error for SysError {}

impl From<WsError> for SysError {
    fn from(e: WsError) -> Self {
        SysError::Workspace(e)
    }
}

/// Counters for the harness (message rejections feed the tamper tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemStats {
    /// Messages exported into the network.
    pub messages_sent: usize,
    /// Messages imported successfully.
    pub messages_accepted: usize,
    /// Messages rejected (verification constraint violation).
    pub messages_rejected: usize,
    /// Local fixpoints that violated a constraint and rolled back
    /// (e.g. facts asserted between steps that a policy forbids).
    pub local_rollbacks: usize,
    /// Distributed fixpoint steps executed.
    pub steps: usize,
}

/// RSA modulus size used for principals (the paper's §6 uses 1024-bit).
pub const DEFAULT_RSA_BITS: usize = 1024;

/// The multi-principal LBTrust runtime.
pub struct System {
    keys: SharedKeys,
    workspaces: HashMap<Principal, Workspace>,
    /// Registration order, for deterministic iteration.
    order: Vec<Principal>,
    /// Placement: principal -> physical node (the `loc` relation).
    placement: HashMap<Principal, NodeId>,
    net: SimNetwork,
    /// Export tuples already shipped, per principal.
    drained: HashMap<Principal, HashSet<Tuple>>,
    rsa_bits: usize,
    auth: HashMap<Principal, AuthScheme>,
    stats: SystemStats,
    seed: u64,
}

impl System {
    /// Creates a system over a perfect network.
    pub fn new() -> System {
        System::with_network(NetworkConfig::default(), 0)
    }

    /// Creates a system with the given network behaviour and RNG seed
    /// (key generation derives per-principal seeds from it).
    pub fn with_network(config: NetworkConfig, seed: u64) -> System {
        System {
            keys: shared_keys(),
            workspaces: HashMap::new(),
            order: Vec::new(),
            placement: HashMap::new(),
            net: SimNetwork::new(config, seed),
            drained: HashMap::new(),
            rsa_bits: DEFAULT_RSA_BITS,
            auth: HashMap::new(),
            stats: SystemStats::default(),
            seed,
        }
    }

    /// Overrides the RSA modulus size (tests use 512 for speed; the
    /// Figure 2 harness keeps the paper's 1024).
    pub fn with_rsa_bits(mut self, bits: usize) -> Self {
        self.rsa_bits = bits;
        self
    }

    /// Shared key directory (for inspection).
    pub fn keys(&self) -> &SharedKeys {
        &self.keys
    }

    /// Network statistics.
    pub fn net_stats(&self) -> lbtrust_net::NetworkStats {
        self.net.stats()
    }

    /// System statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Registered principals in registration order.
    pub fn principals(&self) -> &[Principal] {
        &self.order
    }

    // ---- setup -------------------------------------------------------------

    /// Registers a principal, generating its RSA keypair, placing it on
    /// `node`, installing the `says` declarations and the default
    /// authentication scheme (RSA, §5.1), and introducing it (name and
    /// public key handle) to every existing principal.
    pub fn add_principal(&mut self, name: &str, node: &str) -> Result<Principal, SysError> {
        let me = Symbol::intern(name);
        if self.workspaces.contains_key(&me) {
            return Ok(me);
        }
        let key_seed = self.seed.wrapping_add(me.index() as u64).wrapping_mul(0x9E37_79B9);
        self.keys.write().generate_rsa(me, self.rsa_bits, key_seed);

        let mut ws = Workspace::new(name);
        register_crypto_builtins(ws.builtins_mut(), me, self.keys.clone());
        ws.load("says-decls", SAYS_DECLS)?;
        ws.load("auth", &AuthScheme::Rsa.prelude())?;
        self.auth.insert(me, AuthScheme::Rsa);

        // Introduce everyone to everyone (prin facts + key handles).
        ws.assert_fact(Symbol::intern("prin"), vec![Value::Sym(me)]);
        ws.assert_fact(
            Symbol::intern("rsaprivkey"),
            vec![Value::Sym(me), rsa_priv_handle(me)],
        );
        ws.assert_fact(
            Symbol::intern("rsapubkey"),
            vec![Value::Sym(me), rsa_pub_handle(me)],
        );
        for &other in &self.order {
            ws.assert_fact(Symbol::intern("prin"), vec![Value::Sym(other)]);
            ws.assert_fact(
                Symbol::intern("rsapubkey"),
                vec![Value::Sym(other), rsa_pub_handle(other)],
            );
            let other_ws = self.workspaces.get_mut(&other).expect("registered");
            other_ws.assert_fact(Symbol::intern("prin"), vec![Value::Sym(me)]);
            other_ws.assert_fact(
                Symbol::intern("rsapubkey"),
                vec![Value::Sym(me), rsa_pub_handle(me)],
            );
        }

        // Commit a baseline so any later constraint violation rolls back
        // to a fully introduced workspace, not an empty one.
        ws.evaluate().map_err(SysError::Workspace)?;
        for &other in &self.order {
            self.workspaces
                .get_mut(&other)
                .expect("registered")
                .evaluate()
                .map_err(SysError::Workspace)?;
        }
        self.placement.insert(me, NodeId::new(node));
        self.workspaces.insert(me, ws);
        self.order.push(me);
        self.drained.insert(me, HashSet::new());
        Ok(me)
    }

    /// Establishes a pairwise shared secret (required by the HMAC scheme
    /// and the confidentiality builtins) and tells both workspaces.
    pub fn establish_shared_secret(&mut self, a: Principal, b: Principal) -> Result<(), SysError> {
        let seed = self
            .seed
            .wrapping_add(a.index() as u64)
            .wrapping_mul(31)
            .wrapping_add(b.index() as u64);
        self.keys.write().generate_shared_secret(a, b, seed);
        let handle = shared_secret_handle(a, b);
        for (me, other) in [(a, b), (b, a)] {
            let ws = self
                .workspaces
                .get_mut(&me)
                .ok_or(SysError::UnknownPrincipal(me))?;
            ws.assert_fact(
                Symbol::intern("sharedsecret"),
                vec![Value::Sym(me), Value::Sym(other), handle.clone()],
            );
            ws.evaluate().map_err(SysError::Workspace)?;
        }
        Ok(())
    }

    /// Swaps `who`'s authentication scheme — the paper's two-rule
    /// reconfiguration (§4.1.2). Policies using `says` are untouched.
    pub fn set_auth_scheme(&mut self, who: Principal, scheme: AuthScheme) -> Result<(), SysError> {
        let ws = self
            .workspaces
            .get_mut(&who)
            .ok_or(SysError::UnknownPrincipal(who))?;
        ws.replace_tag("auth", &scheme.prelude())?;
        self.auth.insert(who, scheme);
        Ok(())
    }

    /// The current scheme of `who`.
    pub fn auth_scheme(&self, who: Principal) -> Option<AuthScheme> {
        self.auth.get(&who).copied()
    }

    /// Re-places a principal onto a different node (the `loc` relation
    /// is data: "users can easily enforce various distribution plans by
    /// modifying the loc table", §5.2).
    pub fn place(&mut self, who: Principal, node: &str) {
        self.placement.insert(who, NodeId::new(node));
    }

    /// The node hosting `who`.
    pub fn location(&self, who: Principal) -> Option<NodeId> {
        self.placement.get(&who).copied()
    }

    // ---- workspace access ----------------------------------------------------

    /// Borrows a principal's workspace.
    pub fn workspace(&self, who: Principal) -> Result<&Workspace, SysError> {
        self.workspaces
            .get(&who)
            .ok_or(SysError::UnknownPrincipal(who))
    }

    /// Mutably borrows a principal's workspace.
    pub fn workspace_mut(&mut self, who: Principal) -> Result<&mut Workspace, SysError> {
        self.workspaces
            .get_mut(&who)
            .ok_or(SysError::UnknownPrincipal(who))
    }

    // ---- the distributed fixpoint ---------------------------------------------

    /// Runs every workspace to its local fixpoint, ships export tuples,
    /// delivers messages (triggering imports), and repeats until no
    /// workspace derives anything new and the network is empty.
    ///
    /// Messages whose import violates the receiver's verification
    /// constraint are rejected (the receiving workspace rolls back) and
    /// counted in [`SystemStats::messages_rejected`].
    pub fn run_to_quiescence(&mut self, max_steps: usize) -> Result<SystemStats, SysError> {
        let export = Symbol::intern("export");
        for step in 0..max_steps {
            self.stats.steps += 1;
            // 1. Local fixpoints. A constraint violation rolls the
            // offending workspace back to its last good state (the
            // paper's fail-with-error semantics) and the system carries
            // on.
            for &p in &self.order.clone() {
                let ws = self.workspaces.get_mut(&p).expect("registered");
                match ws.evaluate() {
                    Ok(_) => {}
                    Err(WsError::Constraint(_)) => self.stats.local_rollbacks += 1,
                    Err(e) => return Err(e.into()),
                }
            }
            // 1b. Data-driven placement (§5.2 ld1/ld2): `loc(P, N)`
            // facts derived in any workspace update the placement map —
            // "users can easily enforce various distribution plans by
            // modifying the loc table".
            let loc = Symbol::intern("loc");
            for &p in &self.order.clone() {
                let tuples = self.workspaces.get(&p).expect("registered").tuples(loc);
                for t in tuples {
                    if let [Value::Sym(who), Value::Sym(node)] = t.as_slice() {
                        self.placement.insert(*who, NodeId::from(*node));
                    }
                }
            }
            // 2. Drain fresh export tuples into the network.
            let mut shipped = 0usize;
            for &p in &self.order.clone() {
                let tuples: Vec<Tuple> = {
                    let ws = self.workspaces.get(&p).expect("registered");
                    ws.tuples(export)
                };
                let seen = self.drained.get_mut(&p).expect("registered");
                for tuple in tuples {
                    if seen.contains(&tuple) {
                        continue;
                    }
                    seen.insert(tuple.clone());
                    let Some(msg) = export_tuple_to_message(&tuple) else {
                        continue;
                    };
                    // Tuples addressed *to* this principal are received
                    // imports sitting in its own export[me] partition,
                    // not outgoing traffic.
                    if msg.to == p {
                        continue;
                    }
                    let from_node = self.placement.get(&p).copied().unwrap_or_else(|| {
                        NodeId::new(p.as_str())
                    });
                    let to_node = self
                        .placement
                        .get(&msg.to)
                        .copied()
                        .unwrap_or_else(|| NodeId::new(msg.to.as_str()));
                    self.net.send(from_node, to_node, lbtrust_net::encode(&msg));
                    self.stats.messages_sent += 1;
                    shipped += 1;
                }
            }
            // 3. Deliver and import. Deliveries are batched per
            // destination (one evaluation per workspace per step); when a
            // batch trips the verification constraint, the batch rolls
            // back and messages are retried one at a time so only the
            // offending ones are rejected.
            let mut delivered = 0usize;
            let mut inbox: HashMap<Principal, Vec<Tuple>> = HashMap::new();
            while let Some(envelope) = self.net.deliver_next() {
                delivered += 1;
                let Ok(msg) = lbtrust_net::decode(&envelope.payload) else {
                    self.stats.messages_rejected += 1;
                    continue;
                };
                if !self.workspaces.contains_key(&msg.to) {
                    self.stats.messages_rejected += 1;
                    continue;
                }
                inbox.entry(msg.to).or_default().push(vec![
                    Value::Sym(msg.to),
                    Value::Sym(msg.from),
                    Value::Quote(msg.rule.clone()),
                    Value::bytes(&msg.auth),
                ]);
            }
            for (to, tuples) in inbox {
                let ws = self.workspaces.get_mut(&to).expect("checked above");
                let n = tuples.len();
                for tuple in &tuples {
                    ws.assert_fact(export, tuple.clone());
                }
                match ws.evaluate() {
                    Ok(_) => self.stats.messages_accepted += n,
                    Err(WsError::Constraint(_)) => {
                        // Batch rolled back; isolate the poisoned
                        // message(s).
                        for tuple in tuples {
                            ws.assert_fact(export, tuple);
                            match ws.evaluate() {
                                Ok(_) => self.stats.messages_accepted += 1,
                                Err(WsError::Constraint(_)) => {
                                    self.stats.messages_rejected += 1
                                }
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            // Quiescent when nothing was shipped or delivered this step
            // (local fixpoints already ran).
            if shipped == 0 && delivered == 0 {
                let _ = step;
                return Ok(self.stats);
            }
        }
        Err(SysError::NoQuiescence { steps: max_steps })
    }
}

impl Default for System {
    fn default() -> Self {
        System::new()
    }
}

/// Decodes an `export[to](from, R, S)` tuple into a wire message.
fn export_tuple_to_message(tuple: &[Value]) -> Option<WireMessage> {
    match tuple {
        [Value::Sym(to), Value::Sym(from), Value::Quote(rule), Value::Bytes(auth)] => {
            Some(WireMessage {
                from: *from,
                to: *to,
                rule: rule.clone(),
                auth: auth.to_vec(),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// Two principals, RSA auth: alice says a fact to bob; bob's policy
    /// uses it (the bex1' flow of §5.1).
    #[test]
    fn rsa_says_end_to_end() {
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();

        // Alice: say good(carol) to bob whenever vouched(carol).
        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| good(X). |]) <- vouched(X).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("vouched(carol).")
            .unwrap();

        // Bob: grant read access to anyone alice says is good.
        sys.workspace_mut(bob)
            .unwrap()
            .load(
                "policy",
                "access(P,file1,read) <- says(alice,me,[| good(P) |]).",
            )
            .unwrap();

        sys.run_to_quiescence(16).unwrap();
        assert!(sys
            .workspace(bob)
            .unwrap()
            .holds_src("access(carol,file1,read)")
            .unwrap());
        assert_eq!(sys.stats().messages_sent, 1);
        assert_eq!(sys.stats().messages_accepted, 1);
        assert_eq!(sys.stats().messages_rejected, 0);
    }

    #[test]
    fn hmac_scheme_works_after_two_rule_swap() {
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        sys.establish_shared_secret(alice, bob).unwrap();
        sys.set_auth_scheme(alice, AuthScheme::HmacSha1).unwrap();
        sys.set_auth_scheme(bob, AuthScheme::HmacSha1).unwrap();

        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| good(X). |]) <- vouched(X).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("vouched(dave).")
            .unwrap();
        sys.workspace_mut(bob)
            .unwrap()
            .load(
                "policy",
                "access(P,file1,read) <- says(alice,me,[| good(P) |]).",
            )
            .unwrap();

        sys.run_to_quiescence(16).unwrap();
        assert!(sys
            .workspace(bob)
            .unwrap()
            .holds_src("access(dave,file1,read)")
            .unwrap());
    }

    #[test]
    fn plaintext_scheme() {
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n1").unwrap(); // co-located
        sys.set_auth_scheme(alice, AuthScheme::Plaintext).unwrap();
        sys.set_auth_scheme(bob, AuthScheme::Plaintext).unwrap();

        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| note(N). |]) <- memo(N).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("memo(hello).")
            .unwrap();
        sys.workspace_mut(bob)
            .unwrap()
            .load("policy", "received(N) <- says(alice,me,[| note(N) |]).")
            .unwrap();
        sys.run_to_quiescence(16).unwrap();
        assert!(sys
            .workspace(bob)
            .unwrap()
            .holds(sym("received"), &[Value::sym("hello")]));
    }

    #[test]
    fn loc_facts_drive_placement() {
        // ld1/ld2 (§5.2): asserting loc(P,N) relocates P's partition.
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        assert_eq!(sys.location(bob).unwrap().name(), "n2");
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("loc(bob, rack42).")
            .unwrap();
        sys.run_to_quiescence(8).unwrap();
        assert_eq!(sys.location(bob).unwrap().name(), "rack42");
    }

    #[test]
    fn scheme_mismatch_rejects() {
        // Alice signs with HMAC but bob expects RSA: bob's exp3 cannot
        // verify, so the message is rejected and bob learns nothing.
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        sys.establish_shared_secret(alice, bob).unwrap();
        sys.set_auth_scheme(alice, AuthScheme::HmacSha1).unwrap();
        // bob stays on RSA.

        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| good(X). |]) <- vouched(X).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("vouched(eve).")
            .unwrap();
        sys.workspace_mut(bob)
            .unwrap()
            .load(
                "policy",
                "access(P,f,read) <- says(alice,me,[| good(P) |]).",
            )
            .unwrap();
        sys.run_to_quiescence(16).unwrap();
        assert_eq!(sys.stats().messages_rejected, 1);
        assert!(!sys
            .workspace(bob)
            .unwrap()
            .holds_src("access(eve,f,read)")
            .unwrap());
    }
}
