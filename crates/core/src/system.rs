//! The multi-principal runtime: workspaces + keys + simulated network.
//!
//! A [`System`] plays the role of the paper's deployed environment
//! (§3.5): each principal owns a workspace (its *context*), principals
//! are placed on physical nodes (the `loc` mapping; one or many
//! principals per node), and `export` partitions are drained into the
//! network and imported on delivery. `run_to_quiescence` alternates local
//! fixpoints with message delivery until nothing moves — the
//! distributed fixpoint of the declarative-networking execution model.

use crate::auth::{register_crypto_builtins_cached, AuthScheme, KeyVerifier};
use crate::authz_read::{
    collect_supporting, AuthzPublishState, AuthzReader, AuthzShared, PrincipalSnapshot,
};
use crate::gossip::{
    advert_fact, fingerprint_hex, parse_gossip_send, revfp_fact, GossipSend, GOSSIP_SAYS,
    ZERO_FP_HEX,
};
use crate::obs::{QuiescePhase, SystemObs};
use crate::pool::{
    clamp_shards, split_contiguous, split_lpt, CostModel, PartitionStrategy, WorkerPool,
};
use crate::principal::{
    rsa_priv_handle, rsa_pub_handle, shared_keys, shared_secret_handle, Principal, SharedKeys,
};
use crate::says::SAYS_DECLS;
use crate::workspace::{RetractOutcome, Workspace, WsError};
use lbtrust_analysis::{analyze, Analysis, AnalyzerConfig, Diagnostic, LintLevel};
use lbtrust_certstore::{
    cert, shared_verify_cache, AuditEntry, CertDigest, CertStore, CertStoreError, FaultConfig,
    FaultHandle, ImportOutcome, LinkedCert, Revocation, SharedVerifyCache, SignatureVerifier,
    StorageError,
};
use lbtrust_datalog::{parse_program, EvalStats, Symbol, Tuple, Value};
use lbtrust_net::{
    NetworkConfig, NodeId, RevPullMessage, RevSummaryMessage, RevokeMessage, SimNetwork,
    WireMessage, WirePacket,
};
use lbtrust_obs::{Event, EventSink, Journal, Registry};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// System-level errors.
#[derive(Debug)]
pub enum SysError {
    /// No such principal registered.
    UnknownPrincipal(Principal),
    /// A workspace operation failed.
    Workspace(WsError),
    /// The distributed fixpoint did not quiesce within the step budget.
    NoQuiescence {
        /// Steps executed.
        steps: usize,
    },
    /// A certificate-store operation failed.
    Cert(CertStoreError),
    /// Certificate issuing failed (bad body, missing keys, RSA error).
    Issue(String),
    /// Setting up the persistence directory failed.
    Persist(String),
    /// The principal's store is quarantined after persistent storage
    /// failures: it still answers reads ([`System::authorize`] works),
    /// but refuses writes until the fault heals and a step-based probe
    /// re-admits it.
    Degraded(DegradedError),
    /// Static analysis refused the program: one or more findings at
    /// [`LintLevel::Deny`] under the system's lint configuration (see
    /// [`System::load_program`] and [`System::set_lint_level`]).
    Lint(LintError),
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysError::UnknownPrincipal(p) => write!(f, "unknown principal {p}"),
            SysError::Workspace(e) => write!(f, "{e}"),
            SysError::NoQuiescence { steps } => {
                write!(f, "system did not quiesce after {steps} steps")
            }
            SysError::Cert(e) => write!(f, "{e}"),
            SysError::Issue(m) => write!(f, "certificate issue failed: {m}"),
            SysError::Persist(m) => write!(f, "persistence setup failed: {m}"),
            SysError::Degraded(d) => write!(f, "{d}"),
            SysError::Lint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SysError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SysError::Workspace(e) => Some(e),
            SysError::Cert(e) => Some(e),
            SysError::Lint(e) => Some(e),
            SysError::UnknownPrincipal(_)
            | SysError::NoQuiescence { .. }
            | SysError::Issue(_)
            | SysError::Persist(_)
            | SysError::Degraded(_) => None,
        }
    }
}

/// Structured refusal from the static-analysis preflight (see
/// [`SysError::Lint`]): which program was refused and every deny-level
/// finding, each carrying its lint kind and source position.
#[derive(Clone, Debug)]
pub struct LintError {
    /// The tag the program was being installed under.
    pub tag: String,
    /// The deny-level findings (never empty).
    pub denials: Vec<Diagnostic>,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program `{}` refused by static analysis ({} deny-level finding{}):",
            self.tag,
            self.denials.len(),
            if self.denials.len() == 1 { "" } else { "s" },
        )?;
        for d in &self.denials {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.denials.first().map(|d| d as _)
    }
}

/// Structured refusal for writes against a quarantined store (see
/// [`SysError::Degraded`]): who is degraded, since when, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradedError {
    /// The principal whose store is quarantined.
    pub principal: Principal,
    /// The distributed-fixpoint step at which quarantine began.
    pub since_step: usize,
    /// Storage attempts that failed before the store was quarantined.
    pub attempts: u32,
    /// The last storage error observed, rendered.
    pub last_error: String,
}

impl fmt::Display for DegradedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store for {} quarantined since step {} after {} failed attempts: {}",
            self.principal, self.since_step, self.attempts, self.last_error
        )
    }
}

/// A principal store's position in the fault-handling lifecycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreHealth {
    /// All storage operations succeeding.
    #[default]
    Healthy,
    /// A group commit failed transiently; the store stays writable and
    /// is retried with step-based backoff.
    Degraded,
    /// Retries exhausted: the store serves reads, refuses writes with
    /// [`DegradedError`], is skipped by group commit and
    /// auto-compaction, and is probed for re-admission each step.
    Quarantined,
}

/// Deterministic step-based retry policy for transient storage faults.
///
/// Attempts and backoff are counted in distributed-fixpoint *steps*
/// (`SystemStats::steps`), never wall time, so runs replay exactly
/// under a fixed seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failed attempts before the store is quarantined.
    pub max_attempts: u32,
    /// Backoff after the first failure, in steps; doubles per failure.
    pub backoff_base_steps: usize,
    /// Upper bound on the per-retry backoff, in steps.
    pub backoff_cap_steps: usize,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_steps: 1,
            backoff_cap_steps: 8,
        }
    }
}

impl RetryPolicy {
    /// Steps to wait after `attempts` consecutive failures:
    /// `min(cap, base << (attempts - 1))`, at least one step.
    fn backoff_steps(&self, attempts: u32) -> usize {
        let shift = attempts.saturating_sub(1).min(usize::BITS - 1);
        self.backoff_base_steps
            .max(1)
            .checked_shl(shift)
            .unwrap_or(usize::MAX)
            .min(self.backoff_cap_steps.max(1))
    }
}

/// Per-store fault bookkeeping (internal; surfaced as
/// [`StoreHealth`] / [`DegradedError`]).
#[derive(Clone, Debug, Default)]
struct HealthState {
    health: StoreHealth,
    /// Consecutive failed storage attempts.
    attempts: u32,
    /// Step at which the next deferred retry / quarantine probe runs.
    retry_at_step: usize,
    /// Step at which the store left `Healthy`.
    since_step: usize,
    /// Last storage error observed, rendered.
    last_error: String,
    /// Clock ticks from [`System::advance_time`] deferred while
    /// quarantined, applied on re-admission.
    pending_ticks: u64,
}

impl From<WsError> for SysError {
    fn from(e: WsError) -> Self {
        SysError::Workspace(e)
    }
}

impl From<CertStoreError> for SysError {
    fn from(e: CertStoreError) -> Self {
        SysError::Cert(e)
    }
}

/// Counters for the harness (message rejections feed the tamper tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemStats {
    /// Messages exported into the network.
    pub messages_sent: usize,
    /// Messages imported successfully.
    pub messages_accepted: usize,
    /// Messages rejected (verification constraint violation).
    pub messages_rejected: usize,
    /// Local fixpoints that violated a constraint and rolled back
    /// (e.g. facts asserted between steps that a policy forbids).
    pub local_rollbacks: usize,
    /// Distributed fixpoint steps executed.
    pub steps: usize,
    /// Certificates imported through the stores.
    pub certs_imported: usize,
    /// Revocations applied (locally or off the wire).
    pub revocations: usize,
    /// Certificate-backed base facts retracted (expiry/revocation).
    pub retractions: usize,
    /// Retractions repaired incrementally by DRed.
    pub dred_repairs: usize,
    /// Retractions that forced a full rebuild on the next evaluation.
    pub retraction_rebuilds: usize,
    /// Certificates reconciled from durable logs at principal
    /// registration (replayed, not re-verified).
    pub certs_replayed: usize,
    /// Import bundles whose signature checks were fanned across worker
    /// threads before the store walked the bundle.
    pub parallel_verify_batches: usize,
    /// Anti-entropy rounds in which gossip traffic was generated
    /// (steps where at least two stores' revocation summaries
    /// disagreed).
    pub gossip_rounds: usize,
    /// `revsummary` advertisements handed to the network.
    pub gossip_summaries: usize,
    /// `revpull` requests handed to the network.
    pub gossip_pulls: usize,
    /// Signed revocation objects relayed in answer to pulls
    /// (`revgossip` frames handed to the network).
    pub gossip_served: usize,
}

/// RSA modulus size used for principals (the paper's §6 uses 1024-bit).
pub const DEFAULT_RSA_BITS: usize = 1024;

/// When persistent certificate stores flush appended records to the
/// durable medium.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every mutation — each import bundle, each applied
    /// revocation, each clock advance pays its own fsync immediately.
    /// Nothing acknowledged is ever lost, at the price of an fsync per
    /// mutation per store.
    #[default]
    Eager,
    /// Group commit: mutations leave their store dirty and
    /// [`System::run_to_quiescence`] syncs every dirty store once per
    /// step (and [`System::import_certificates`] once per bundle). A
    /// crash between group commits loses at most the mutations since
    /// the last one; replay recovers exactly the synced prefix. Call
    /// [`System::flush`] to force a commit point outside a quiescence
    /// run.
    Batched,
}

/// The outcome of [`System::authorize`]: the verdict plus the
/// credentials it rests on.
#[derive(Clone, Debug)]
pub struct AuthzDecision {
    /// Whose workspace was consulted.
    pub principal: Principal,
    /// The goal as asked (LBTrust fact source).
    pub goal: String,
    /// Whether the goal holds.
    pub granted: bool,
    /// Content addresses of the certificates whose certified rules
    /// appear as `says` premises in the proof or whose certified facts
    /// ground a proof step — sorted by digest bytes, deduplicated.
    /// Empty for denials and for grants derivable from local facts
    /// alone.
    pub supporting: Vec<CertDigest>,
    /// The rendered proof tree, when granted.
    pub proof: Option<String>,
}

/// One principal's imported-certificate fact index: which workspace
/// base facts each certificate introduced, by content address.
type CertFactIndex = HashMap<CertDigest, Vec<(Symbol, Tuple)>>;

/// The multi-principal LBTrust runtime.
pub struct System {
    keys: SharedKeys,
    workspaces: HashMap<Principal, Workspace>,
    /// Registration order, for deterministic iteration.
    order: Vec<Principal>,
    /// Placement: principal -> physical node (the `loc` relation).
    placement: HashMap<Principal, NodeId>,
    net: SimNetwork,
    /// Structural fingerprints of export tuples already shipped, per
    /// principal — 16 bytes per tuple instead of a deep clone of each
    /// exported tuple (symbols, quoted rules, signature bytes).
    drained: HashMap<Principal, HashSet<TupleFingerprint>>,
    rsa_bits: usize,
    auth: HashMap<Principal, AuthScheme>,
    stats: SystemStats,
    seed: u64,
    /// Per-principal certificate stores, all sharing `vcache`.
    stores: HashMap<Principal, CertStore>,
    /// Process-wide verification cache: a signature over identical
    /// canonical bytes is checked once, by whichever principal sees it
    /// first, and every later check anywhere is a memo lookup.
    vcache: SharedVerifyCache,
    /// Which workspace base facts each imported certificate introduced
    /// at each principal, so expiry/revocation can retract exactly
    /// those (and DRed repairs their consequences). Keyed per principal
    /// first so a delivery shard can own one principal's slice
    /// exclusively.
    cert_facts: HashMap<Principal, CertFactIndex>,
    /// When set, each principal's certificate store is a durable
    /// segment log at `<dir>/<principal>.certlog`, replayed (and the
    /// workspace reconciled) at registration.
    persist_dir: Option<PathBuf>,
    /// When stores fsync (see [`SyncPolicy`]).
    sync_policy: SyncPolicy,
    /// Segment-rotation budget for persistent stores (`None` = the
    /// backend default). Applied at principal registration.
    rotate_bytes: Option<u64>,
    /// Auto-compaction threshold: during a batched group commit, any
    /// store holding at least this many dead (compactable) bytes is
    /// compacted on its shard worker. `None` disables the trigger.
    auto_compact_dead_bytes: Option<u64>,
    /// Worker count for [`System::run_to_quiescence`]: per-principal
    /// tasks are dispatched to the persistent [`WorkerPool`] below.
    /// `1` (the default) is the inline serial engine — no pool exists.
    shards: usize,
    /// The persistent worker pool, created at [`System::set_shards`]
    /// when `shards > 1` (resized by recreating) and joined when the
    /// system drops. Tasks are *owned* values moved out of the maps
    /// above for one batch and merged back in registration order.
    pool: Option<WorkerPool<PoolTask, PoolDone>>,
    /// How per-principal tasks map onto pool workers.
    partition: PartitionStrategy,
    /// Whether idle pool workers steal queued tasks from loaded ones.
    stealing: bool,
    /// Where the cost estimates driving `CostAware` partitioning come
    /// from.
    cost_model: CostModel,
    /// Per-principal cost estimate from the last local fixpoint
    /// (deterministic counters or opt-in wall time; see [`CostModel`]),
    /// feeding the greedy LPT repartition recomputed between steps.
    costs: HashMap<Principal, u64>,
    /// The anti-entropy revocation gossip layer, when enabled (see
    /// [`System::enable_gossip`]). `None` keeps the pre-gossip
    /// behaviour: revocations propagate only through the eager
    /// broadcast.
    gossip: Option<GossipRuntime>,
    /// The unified observability surface: metrics registry, quiescence
    /// phase spans, decision journal (see [`System::obs_registry`]).
    obs: SystemObs,
    /// Step-based retry/quarantine policy for storage faults.
    retry_policy: RetryPolicy,
    /// Per-principal fault-handling state (always has an entry per
    /// registered principal).
    health: HashMap<Principal, HealthState>,
    /// When set (see [`System::with_storage_faults`]), every store
    /// registered afterwards is wrapped in a seeded
    /// [`lbtrust_certstore::FaultingBackend`], with a per-store
    /// schedule derived from this spec and the principal's name.
    fault_spec: Option<FaultConfig>,
    /// Handles to the per-store fault schedules, for tests and the
    /// quarantine probe (a persistently-failed handle cannot pass).
    fault_handles: HashMap<Principal, FaultHandle>,
    /// Per-principal snapshot-publication bookkeeping: what the last
    /// published [`crate::AuthzSnapshot`] captured, and which
    /// retractions/certificate deaths happened since.
    authz_pub: HashMap<Principal, AuthzPublishState>,
    /// State shared with [`crate::AuthzReader`] handles: the snapshot
    /// cell, the decision cache, and the volatile cache counters.
    authz_shared: Arc<AuthzShared>,
    /// Lint levels and predicate vocabulary for the static-analysis
    /// preflight ([`System::load_program`], [`System::enable_gossip`]).
    lint: AnalyzerConfig,
}

/// Runtime bookkeeping of the gossip layer: the loaded program and, per
/// principal, the workspace facts currently asserted on its behalf —
/// so a changed fingerprint or a superseding advertisement retracts
/// exactly the stale fact it replaces.
struct GossipRuntime {
    /// The propagation logic, as translated LBTrust source (authored in
    /// SeNDlog; see `lbtrust-sendlog::gossip::REV_GOSSIP`). Loaded into
    /// every workspace under the `gossip` tag.
    program: String,
    /// Last asserted `revfp` hex per principal per signer.
    fps: HashMap<Principal, HashMap<Symbol, String>>,
    /// Last asserted incoming advertisement per principal, keyed by
    /// `(advertiser, signer)`.
    inbox: HashMap<Principal, HashMap<(Symbol, Symbol), String>>,
}

/// Bundles at or above this size fan their signature checks across
/// `std::thread::scope` workers before the store walks the bundle;
/// smaller bundles verify serially (thread spawn would cost more than
/// the checks).
pub const PARALLEL_VERIFY_MIN: usize = 8;

impl System {
    /// Creates a system over a perfect network.
    pub fn new() -> System {
        System::with_network(NetworkConfig::default(), 0)
    }

    /// Creates a system with the given network behaviour and RNG seed
    /// (key generation derives per-principal seeds from it).
    pub fn with_network(config: NetworkConfig, seed: u64) -> System {
        let registry = Registry::new();
        let mut net = SimNetwork::new(config, seed);
        net.attach_metrics(&registry);
        let authz_shared = Arc::new(AuthzShared::new(&registry));
        System {
            keys: shared_keys(),
            workspaces: HashMap::new(),
            order: Vec::new(),
            placement: HashMap::new(),
            net,
            drained: HashMap::new(),
            rsa_bits: DEFAULT_RSA_BITS,
            auth: HashMap::new(),
            stats: SystemStats::default(),
            seed,
            stores: HashMap::new(),
            vcache: shared_verify_cache(),
            cert_facts: HashMap::new(),
            persist_dir: None,
            sync_policy: SyncPolicy::default(),
            rotate_bytes: None,
            auto_compact_dead_bytes: None,
            shards: 1,
            pool: None,
            partition: PartitionStrategy::default(),
            stealing: true,
            cost_model: CostModel::default(),
            costs: HashMap::new(),
            gossip: None,
            obs: SystemObs::new(registry),
            retry_policy: RetryPolicy::default(),
            health: HashMap::new(),
            fault_spec: None,
            fault_handles: HashMap::new(),
            authz_pub: HashMap::new(),
            authz_shared,
            lint: AnalyzerConfig::default(),
        }
    }

    /// Arms deterministic storage-fault injection: every principal
    /// registered *after* this call gets a store wrapped in a seeded
    /// [`lbtrust_certstore::FaultingBackend`], its schedule derived
    /// from `spec` and the principal's name (registration-order and
    /// shard-count invariant). Use [`System::fault_handle`] to inject
    /// explicit faults or heal a store from tests.
    pub fn with_storage_faults(mut self, spec: FaultConfig) -> System {
        self.fault_spec = Some(spec);
        self
    }

    /// Overrides the step-based retry/quarantine policy (builder form).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> System {
        self.retry_policy = policy;
        self
    }

    /// Overrides the step-based retry/quarantine policy in place.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The active retry/quarantine policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// The fault-schedule handle for `p`'s store, when fault injection
    /// is armed (see [`System::with_storage_faults`]).
    pub fn fault_handle(&self, p: Principal) -> Option<FaultHandle> {
        self.fault_handles.get(&p).cloned()
    }

    /// Where `p`'s store sits in the fault-handling lifecycle.
    /// Unregistered principals read as healthy.
    pub fn store_health(&self, p: Principal) -> StoreHealth {
        self.health.get(&p).map(|h| h.health).unwrap_or_default()
    }

    /// The currently quarantined principals, in registration order.
    pub fn quarantined(&self) -> Vec<Principal> {
        self.order
            .iter()
            .copied()
            .filter(|p| self.store_health(*p) == StoreHealth::Quarantined)
            .collect()
    }

    // ---- observability -------------------------------------------------------

    /// Replaces the system's metrics registry — so several systems (or
    /// a bench harness) share one registry, or tests get a private one
    /// to snapshot. Must be called before principals are registered:
    /// stores bind their counter handles at registration. The network's
    /// counters re-bind immediately (seeded with totals so far); phase
    /// timing and journal settings carry over.
    pub fn with_obs_registry(mut self, registry: Registry) -> Self {
        let timing = self.obs.timing_enabled();
        let journal = self.obs.journal.clone();
        self.obs = SystemObs::new(registry);
        self.obs.set_timing(timing);
        self.obs.journal = journal;
        self.net.attach_metrics(self.obs.registry());
        // The reader-side counters bind at construction too; existing
        // reader handles (there are none this early — see the doc
        // comment) would keep the old shared state, so the cell and
        // cache are recreated alongside.
        self.authz_shared = Arc::new(AuthzShared::new(self.obs.registry()));
        for st in self.authz_pub.values_mut() {
            st.snap = None;
        }
        self
    }

    /// The unified metrics registry: `net.*` counters (live), `store.*`
    /// counters (live, aggregated across every principal's store),
    /// `storelog.*` lifecycle metrics (persistent stores), `quiesce.*`
    /// phase-timing histograms, `authz.*` decision counters, and the
    /// `system.*` gauges refreshed by [`System::publish_obs`].
    pub fn obs_registry(&self) -> &Registry {
        self.obs.registry()
    }

    /// Turns the `quiesce.*` phase spans (and per-shard fixpoint
    /// timing) on or off. On by default; the off path costs one branch
    /// per phase, which the bench suite's overhead microbench pins
    /// under its noise floor.
    pub fn set_phase_timing(&mut self, on: bool) {
        self.obs.set_timing(on);
    }

    /// Builder form of [`System::set_phase_timing`].
    pub fn with_phase_timing(mut self, on: bool) -> Self {
        self.set_phase_timing(on);
        self
    }

    /// Routes authorization decisions ([`System::authorize`]) to
    /// `sink` as structured events — each carrying the principal, the
    /// goal, the verdict, and the supporting certificate digests.
    pub fn enable_decision_journal(&mut self, sink: Arc<dyn EventSink>) {
        self.obs.journal = Journal::to_sink(sink);
    }

    /// Builder form of [`System::enable_decision_journal`].
    pub fn with_decision_journal(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.enable_decision_journal(sink);
        self
    }

    /// Flushes the decision journal's sink — a JSONL sink buffers, so
    /// call this before reading the file while the system is alive
    /// (dropping the system flushes too).
    pub fn flush_decision_journal(&self) {
        self.obs.journal.flush();
    }

    /// Refreshes the `system.*` gauges from [`SystemStats`] and the
    /// aggregate store-footprint gauges (`store.live_bytes`,
    /// `store.dead_bytes`, `store.segments`) from every principal's
    /// store. Called automatically when [`System::run_to_quiescence`]
    /// reaches quiescence; call directly for a mid-run snapshot.
    pub fn publish_obs(&self) {
        let r = self.obs.registry();
        let s = &self.stats;
        for (name, value) in [
            ("system.messages_sent", s.messages_sent),
            ("system.messages_accepted", s.messages_accepted),
            ("system.messages_rejected", s.messages_rejected),
            ("system.local_rollbacks", s.local_rollbacks),
            ("system.steps", s.steps),
            ("system.certs_imported", s.certs_imported),
            ("system.revocations", s.revocations),
            ("system.retractions", s.retractions),
            ("system.dred_repairs", s.dred_repairs),
            ("system.retraction_rebuilds", s.retraction_rebuilds),
            ("system.certs_replayed", s.certs_replayed),
            ("system.parallel_verify_batches", s.parallel_verify_batches),
            ("system.gossip_rounds", s.gossip_rounds),
            ("system.gossip_summaries", s.gossip_summaries),
            ("system.gossip_pulls", s.gossip_pulls),
            ("system.gossip_served", s.gossip_served),
        ] {
            r.gauge(name).set(value as u64);
        }
        let mut live = 0u64;
        let mut dead = 0u64;
        let mut segments = 0u64;
        for store in self.stores.values() {
            let st = store.stats();
            live += st.live_bytes;
            dead += st.dead_bytes;
            segments += st.segments;
        }
        r.gauge("store.live_bytes").set(live);
        r.gauge("store.dead_bytes").set(dead);
        r.gauge("store.segments").set(segments);
        self.obs.publish_imbalance();
    }

    /// Creates a system whose certificate stores are durable: each
    /// principal registered afterwards opens (or creates) a segment log
    /// under `dir`, replays it, and reconciles its workspace — active
    /// certificates re-assert their `export`/`says` facts without any
    /// signature re-verification, and previously revoked certificates
    /// stay rejected. Reopening the same directory with the same
    /// principals (same registration order) reproduces the pre-restart
    /// state.
    pub fn open_persistent(dir: impl AsRef<Path>) -> Result<System, SysError> {
        System::new().persist_at(dir)
    }

    /// Builder form: makes this system's stores durable under `dir`
    /// (see [`System::open_persistent`]). Must be called before
    /// principals are registered.
    pub fn persist_at(mut self, dir: impl AsRef<Path>) -> Result<Self, SysError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SysError::Persist(format!("creating {}: {e}", dir.display())))?;
        self.persist_dir = Some(dir);
        Ok(self)
    }

    /// Where durable stores live, if persistence is on.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist_dir.as_deref()
    }

    /// Overrides the RSA modulus size (tests use 512 for speed; the
    /// Figure 2 harness keeps the paper's 1024).
    pub fn with_rsa_bits(mut self, bits: usize) -> Self {
        self.rsa_bits = bits;
        self
    }

    /// Builder form of [`System::set_sync_policy`].
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Sets when persistent stores fsync (see [`SyncPolicy`]). Safe to
    /// change at any point: switching from `Batched` to `Eager` does
    /// not itself sync — call [`System::flush`] first if the dirty
    /// stores must land before the policy change takes effect.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.sync_policy = policy;
    }

    /// The current durability policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Builder form: sets the segment-rotation budget (bytes) for
    /// persistent stores registered afterwards — the active segment of
    /// each store's log is sealed and a fresh one started once it
    /// exceeds the budget. Defaults to the backend's 4 MiB.
    pub fn with_rotation_budget(mut self, bytes: u64) -> Self {
        self.rotate_bytes = Some(bytes.max(1));
        self
    }

    /// Builder form of [`System::set_auto_compaction`].
    pub fn with_auto_compaction(mut self, dead_bytes: u64) -> Self {
        self.set_auto_compaction(Some(dead_bytes));
        self
    }

    /// Arms (or with `None` disarms) the auto-compaction trigger: every
    /// batched group commit additionally compacts, on its shard worker,
    /// any store whose dead-record bytes reached `dead_bytes`. Dead
    /// bytes are what a compaction reclaims — records superseded by
    /// revocation, expiry, or newer clock ticks.
    pub fn set_auto_compaction(&mut self, dead_bytes: Option<u64>) {
        self.auto_compact_dead_bytes = dead_bytes;
    }

    /// The auto-compaction threshold, if armed.
    pub fn auto_compaction(&self) -> Option<u64> {
        self.auto_compact_dead_bytes
    }

    /// Builder form of [`System::set_shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    /// Sets how many pool workers [`System::run_to_quiescence`] uses.
    /// `shards > 1` creates (or resizes, by recreating) the persistent
    /// [`WorkerPool`]: long-lived threads that run the local-fixpoint,
    /// delivery-import and store-maintenance phases at per-principal
    /// task granularity, with work stealing
    /// ([`System::set_stealing`]) and cost-aware repartitioning
    /// ([`System::set_partition`]). `1` (the default) drops the pool
    /// and runs everything inline — byte-for-byte the serial engine.
    /// Any worker count reaches the same quiescent state: results
    /// merge sequentially in registration order, so which worker ran a
    /// task is unobservable.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
        let wanted = if self.shards > 1 { self.shards } else { 0 };
        let current = self.pool.as_ref().map_or(0, WorkerPool::workers);
        if wanted != current {
            self.pool = (wanted > 0).then(|| WorkerPool::new(wanted, Arc::new(run_pool_task)));
        }
    }

    /// The configured shard (pool worker) count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The pool's thread-liveness witness, for shutdown tests.
    #[cfg(test)]
    pub(crate) fn pool_liveness(&self) -> Option<std::sync::Arc<()>> {
        self.pool.as_ref().map(WorkerPool::liveness)
    }

    /// Builder form of [`System::set_partition`].
    pub fn with_partition(mut self, strategy: PartitionStrategy) -> Self {
        self.set_partition(strategy);
        self
    }

    /// Chooses how per-principal tasks are assigned to pool workers:
    /// [`PartitionStrategy::CostAware`] (the default) re-runs a greedy
    /// LPT assignment between steps over the last step's per-principal
    /// cost estimates; [`PartitionStrategy::Contiguous`] keeps the
    /// original balanced registration-order slices. Either strategy
    /// reaches the identical quiescent state.
    pub fn set_partition(&mut self, strategy: PartitionStrategy) {
        self.partition = strategy;
    }

    /// The configured partition strategy.
    pub fn partition(&self) -> PartitionStrategy {
        self.partition
    }

    /// Builder form of [`System::set_stealing`].
    pub fn with_stealing(mut self, on: bool) -> Self {
        self.set_stealing(on);
        self
    }

    /// Turns pool work stealing on or off (on by default): with
    /// stealing, an idle worker drains the back of the most-loaded
    /// queue instead of sleeping, so a mis-partitioned hub's backlog
    /// spreads. Stealing never changes the quiescent state — only
    /// wall-clock and the volatile `pool.steals` counter.
    pub fn set_stealing(&mut self, on: bool) {
        self.stealing = on;
    }

    /// Whether pool work stealing is on.
    pub fn stealing(&self) -> bool {
        self.stealing
    }

    /// Builder form of [`System::set_cost_model`].
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.set_cost_model(model);
        self
    }

    /// Chooses the per-principal cost estimate feeding the cost-aware
    /// partition: [`CostModel::Deterministic`] (the default) uses the
    /// last evaluation's rules-fired + facts-derived counters, so the
    /// partition is identical across runs; [`CostModel::WallTime`]
    /// opts into last-step wall-clock nanoseconds.
    pub fn set_cost_model(&mut self, model: CostModel) {
        self.cost_model = model;
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// Enables the anti-entropy revocation gossip layer. `program` is
    /// the propagation logic as LBTrust source — author it in SeNDlog
    /// and translate through `lbtrust-sendlog` (the crate's
    /// `gossip::rev_gossip_program()` yields exactly this system's
    /// protocol); it is loaded into every registered workspace (and
    /// every workspace registered later) under the `gossip` tag.
    ///
    /// With gossip on, [`System::run_to_quiescence`] runs an
    /// anti-entropy round each step while any two stores' revocation
    /// summaries disagree: the runtime refreshes each workspace's
    /// `revfp` facts from its store, ships the `revsummary`/`revpull`
    /// messages the program derives, and answers pulls with the signed
    /// revocation objects themselves — so a store that missed the
    /// eager broadcast (packet loss, partition, late registration)
    /// still converges. The eager point-to-point broadcast remains the
    /// fast path; gossip is the repair layer.
    pub fn enable_gossip(&mut self, program: &str) -> Result<(), SysError> {
        // Static-analysis preflight: gossip logic reaches every
        // workspace, so a deny-level finding refuses it for all of them
        // before any workspace is touched.
        self.preflight("gossip", program)?;
        for &p in &self.order {
            let ws = self.workspaces.get_mut(&p).expect("registered");
            ws.replace_tag("gossip", program)?;
        }
        self.gossip = Some(GossipRuntime {
            program: program.to_string(),
            fps: HashMap::new(),
            inbox: HashMap::new(),
        });
        Ok(())
    }

    /// Builder form of [`System::enable_gossip`].
    pub fn with_gossip(mut self, program: &str) -> Result<Self, SysError> {
        self.enable_gossip(program)?;
        Ok(self)
    }

    /// Whether the gossip repair layer is on.
    pub fn gossip_enabled(&self) -> bool {
        self.gossip.is_some()
    }

    /// Forces every store's buffered appends to durable storage — the
    /// explicit group-commit point for [`SyncPolicy::Batched`] callers
    /// outside [`System::run_to_quiescence`] (which group-commits at
    /// every step on its own). Clean stores are skipped; a no-op under
    /// [`SyncPolicy::Eager`] where nothing is ever left dirty.
    pub fn flush(&mut self) -> Result<(), SysError> {
        let order = self.order.clone();
        self.sync_stores(&order)
    }

    /// Total backend syncs performed across every principal's store —
    /// for log-backed stores, the number of fsyncs the deployment has
    /// paid. The counter [`SyncPolicy::Batched`] exists to shrink.
    pub fn fsyncs(&self) -> u64 {
        self.stores.values().map(|s| s.stats().syncs).sum()
    }

    /// Compacts every principal's store — checkpoint + prune of
    /// superseded segments — in parallel across the configured shard
    /// workers. Returns how many stores actually installed a compaction
    /// (memory-backed stores never do). Dead records (revoked/expired
    /// certificates, superseded ticks) stop occupying disk, reopen cost
    /// drops to checkpoint + suffix, and audit citations survive via
    /// the folded audit segment.
    pub fn compact(&mut self) -> Result<usize, SysError> {
        let order = self.order.clone();
        self.maintain_stores(&order, true)
    }

    /// Checkpoints every principal's store without pruning: future
    /// reopens replay checkpoint + suffix, while superseded segments
    /// stay on disk. Runs on the shard workers like [`System::compact`].
    pub fn checkpoint(&mut self) -> Result<usize, SysError> {
        let order = self.order.clone();
        self.maintain_stores(&order, false)
    }

    /// Runs per-store checkpoint/compaction across the pool workers
    /// (inline when the system is serial).
    fn maintain_stores(&mut self, order: &[Principal], prune: bool) -> Result<usize, SysError> {
        if order.is_empty() {
            return Ok(0);
        }
        // Quarantined stores are skipped outright — maintenance is a
        // write (checkpoint append / segment rewrite) and the store is
        // read-only until its fault heals.
        let present: Vec<Principal> = order
            .iter()
            .copied()
            .filter(|p| {
                self.stores.contains_key(p) && self.store_health(*p) != StoreHealth::Quarantined
            })
            .collect();
        let workers = clamp_shards(self.shards, present.len());
        if workers <= 1 || self.pool.is_none() {
            let mut performed = 0usize;
            for p in &present {
                // Invariant: `present` is filtered against `stores`
                // membership above and nothing removes entries.
                let store = self.stores.get_mut(p).expect("filtered above");
                match if prune {
                    store.compact()
                } else {
                    store.checkpoint()
                } {
                    Ok(report) => {
                        performed += usize::from(report.performed);
                        self.note_store_ok(*p);
                    }
                    // Transient I/O degrades the store (retried by the
                    // next group commit / maintenance pass) instead of
                    // failing the whole sweep.
                    Err(e) => self.note_store_failure(*p, e)?,
                }
            }
            return Ok(performed);
        }
        let pool = self.pool.as_ref().expect("pool exists when shards > 1");
        let tasks: Vec<PoolTask> = present
            .iter()
            .map(|p| PoolTask::Store {
                store: self.stores.remove(p).expect("filtered above"),
                op: StoreOp::Maintain { prune },
            })
            .collect();
        // fsync-bound work with no per-store cost signal: a balanced
        // contiguous split plus stealing is as good as LPT here.
        let queues = split_contiguous(tasks, pool.workers());
        let report = pool.run_batch(queues, self.stealing);
        self.obs.record_pool_batch(report.steals, report.tasks);
        let mut performed = 0usize;
        let mut failures: Vec<(Principal, CertStoreError)> = Vec::new();
        for (i, done) in report.results.into_iter().enumerate() {
            let PoolDone::Store { store, result } = done else {
                unreachable!("store batches return store results");
            };
            self.stores.insert(present[i], store);
            match result {
                Ok(did) => {
                    performed += usize::from(did);
                    self.note_store_ok(present[i]);
                }
                Err(e) => failures.push((present[i], e)),
            }
        }
        for (p, e) in failures {
            self.note_store_failure(p, e)?;
        }
        Ok(performed)
    }

    /// Shared key directory (for inspection).
    pub fn keys(&self) -> &SharedKeys {
        &self.keys
    }

    /// Network statistics.
    pub fn net_stats(&self) -> lbtrust_net::NetworkStats {
        self.net.stats()
    }

    /// Mutable access to the simulated network — for fault-plane tests
    /// and benches to install partitions or inspect the fault clock.
    /// The network is part of the deterministic state: mutate it
    /// between [`System::run_to_quiescence`] runs, not during one.
    pub fn network_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// System statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Registered principals in registration order.
    pub fn principals(&self) -> &[Principal] {
        &self.order
    }

    // ---- setup -------------------------------------------------------------

    /// Registers a principal, generating its RSA keypair, placing it on
    /// `node`, installing the `says` declarations and the default
    /// authentication scheme (RSA, §5.1), and introducing it (name and
    /// public key handle) to every existing principal.
    pub fn add_principal(&mut self, name: &str, node: &str) -> Result<Principal, SysError> {
        let me = Symbol::intern(name);
        if self.workspaces.contains_key(&me) {
            return Ok(me);
        }
        let key_seed = self
            .seed
            .wrapping_add(me.index() as u64)
            .wrapping_mul(0x9E37_79B9);
        self.keys.write().generate_rsa(me, self.rsa_bits, key_seed);

        let mut ws = Workspace::new(name);
        register_crypto_builtins_cached(
            ws.builtins_mut(),
            me,
            self.keys.clone(),
            self.vcache.clone(),
        );
        ws.load("says-decls", SAYS_DECLS)?;
        ws.load("auth", &AuthScheme::Rsa.prelude())?;
        // Late joiners run the gossip program from their first step, so
        // revocations issued before they existed still reach them.
        if let Some(gossip) = &self.gossip {
            ws.load("gossip", &gossip.program)?;
        }
        self.auth.insert(me, AuthScheme::Rsa);

        // Introduce everyone to everyone (prin facts + key handles).
        ws.assert_fact(Symbol::intern("prin"), vec![Value::Sym(me)]);
        ws.assert_fact(
            Symbol::intern("rsaprivkey"),
            vec![Value::Sym(me), rsa_priv_handle(me)],
        );
        ws.assert_fact(
            Symbol::intern("rsapubkey"),
            vec![Value::Sym(me), rsa_pub_handle(me)],
        );
        for &other in &self.order {
            ws.assert_fact(Symbol::intern("prin"), vec![Value::Sym(other)]);
            ws.assert_fact(
                Symbol::intern("rsapubkey"),
                vec![Value::Sym(other), rsa_pub_handle(other)],
            );
            let other_ws = self.workspaces.get_mut(&other).expect("registered");
            other_ws.assert_fact(Symbol::intern("prin"), vec![Value::Sym(me)]);
            other_ws.assert_fact(
                Symbol::intern("rsapubkey"),
                vec![Value::Sym(me), rsa_pub_handle(me)],
            );
        }

        // The certificate store: ephemeral by default, a replayed
        // segment log under persistence. With fault injection armed,
        // either backend is wrapped in a FaultingBackend whose schedule
        // depends only on the spec seed and the principal's name.
        let faults = self
            .fault_spec
            .as_ref()
            .map(|spec| FaultHandle::seeded(spec.for_store(name)));
        let mut store = match (&self.persist_dir, &faults) {
            (Some(dir), Some(handle)) => {
                let path = dir.join(format!("{name}.certlog"));
                CertStore::open_with_obs_faults(
                    path,
                    self.vcache.clone(),
                    self.rotate_bytes,
                    self.obs.registry(),
                    handle.clone(),
                )
                .map_err(SysError::Cert)?
            }
            (Some(dir), None) => {
                let path = dir.join(format!("{name}.certlog"));
                CertStore::open_with_obs(
                    path,
                    self.vcache.clone(),
                    self.rotate_bytes,
                    self.obs.registry(),
                )
                .map_err(SysError::Cert)?
            }
            (None, Some(handle)) => {
                let mut store = CertStore::with_cache_faults(self.vcache.clone(), handle.clone());
                handle.attach_metrics(self.obs.registry());
                store.attach_obs(self.obs.registry());
                store
            }
            (None, None) => {
                let mut store = CertStore::with_cache(self.vcache.clone());
                store.attach_obs(self.obs.registry());
                store
            }
        };
        // Replay reconciliation: every certificate the log shows as
        // still active re-introduces exactly the facts a live import
        // would have asserted (`export[me](issuer, R, S)` + `says`), so
        // the workspace's derived state matches the pre-restart system
        // once policies are reloaded. Certificates the log shows as
        // revoked/expired produced retraction events during replay, but
        // a freshly registered workspace holds no facts for them — the
        // events are drained so they cannot fire twice.
        let _ = store.take_replay_events();
        let mut replayed: Vec<(Symbol, Tuple)> = Vec::new();
        let my_facts = self.cert_facts.entry(me).or_default();
        for digest in store.active() {
            let entry = store.get(&digest).expect("active digest is stored");
            let facts = cert_workspace_facts(me, &entry.cert);
            replayed.extend(facts.iter().cloned());
            my_facts.insert(digest, facts);
            self.stats.certs_replayed += 1;
        }
        ws.assert_facts(&replayed);

        // Commit a baseline so any later constraint violation rolls back
        // to a fully introduced workspace, not an empty one.
        ws.evaluate().map_err(SysError::Workspace)?;
        for &other in &self.order {
            self.workspaces
                .get_mut(&other)
                .expect("registered")
                .evaluate()
                .map_err(SysError::Workspace)?;
        }
        self.placement.insert(me, NodeId::new(node));
        self.workspaces.insert(me, ws);
        self.order.push(me);
        self.drained.insert(me, HashSet::new());
        self.stores.insert(me, store);
        self.health.insert(me, HealthState::default());
        if let Some(handle) = faults {
            self.fault_handles.insert(me, handle);
        }
        Ok(me)
    }

    /// Establishes a pairwise shared secret (required by the HMAC scheme
    /// and the confidentiality builtins) and tells both workspaces.
    pub fn establish_shared_secret(&mut self, a: Principal, b: Principal) -> Result<(), SysError> {
        let seed = self
            .seed
            .wrapping_add(a.index() as u64)
            .wrapping_mul(31)
            .wrapping_add(b.index() as u64);
        self.keys.write().generate_shared_secret(a, b, seed);
        let handle = shared_secret_handle(a, b);
        for (me, other) in [(a, b), (b, a)] {
            let ws = self
                .workspaces
                .get_mut(&me)
                .ok_or(SysError::UnknownPrincipal(me))?;
            ws.assert_fact(
                Symbol::intern("sharedsecret"),
                vec![Value::Sym(me), Value::Sym(other), handle.clone()],
            );
            ws.evaluate().map_err(SysError::Workspace)?;
        }
        Ok(())
    }

    /// Swaps `who`'s authentication scheme — the paper's two-rule
    /// reconfiguration (§4.1.2). Policies using `says` are untouched.
    pub fn set_auth_scheme(&mut self, who: Principal, scheme: AuthScheme) -> Result<(), SysError> {
        let ws = self
            .workspaces
            .get_mut(&who)
            .ok_or(SysError::UnknownPrincipal(who))?;
        ws.replace_tag("auth", &scheme.prelude())?;
        self.auth.insert(who, scheme);
        Ok(())
    }

    /// The current scheme of `who`.
    pub fn auth_scheme(&self, who: Principal) -> Option<AuthScheme> {
        self.auth.get(&who).copied()
    }

    /// Re-places a principal onto a different node (the `loc` relation
    /// is data: "users can easily enforce various distribution plans by
    /// modifying the loc table", §5.2).
    pub fn place(&mut self, who: Principal, node: &str) {
        self.placement.insert(who, NodeId::new(node));
    }

    /// The node hosting `who`.
    pub fn location(&self, who: Principal) -> Option<NodeId> {
        self.placement.get(&who).copied()
    }

    // ---- workspace access ----------------------------------------------------

    /// Borrows a principal's workspace.
    pub fn workspace(&self, who: Principal) -> Result<&Workspace, SysError> {
        self.workspaces
            .get(&who)
            .ok_or(SysError::UnknownPrincipal(who))
    }

    /// Mutably borrows a principal's workspace.
    pub fn workspace_mut(&mut self, who: Principal) -> Result<&mut Workspace, SysError> {
        self.workspaces
            .get_mut(&who)
            .ok_or(SysError::UnknownPrincipal(who))
    }

    // ---- static-analysis preflight -------------------------------------------

    /// The lint configuration the preflight analyses run under.
    pub fn lint_config(&self) -> &AnalyzerConfig {
        &self.lint
    }

    /// Replaces the lint configuration.
    pub fn set_lint_config(&mut self, config: AnalyzerConfig) {
        self.lint = config;
    }

    /// Sets one lint's level (builder form).
    pub fn with_lint_level(mut self, kind: lbtrust_analysis::DiagKind, level: LintLevel) -> Self {
        self.lint.set_level(kind, level);
        self
    }

    /// Sets one lint's level, e.g. demoting a deny-level lint to `Warn`
    /// for a program that is trusted by construction.
    pub fn set_lint_level(&mut self, kind: lbtrust_analysis::DiagKind, level: LintLevel) {
        self.lint.set_level(kind, level);
    }

    /// Parses and analyzes `src` under the system's lint configuration,
    /// refusing it when any finding is at [`LintLevel::Deny`].
    fn preflight(&self, tag: &str, src: &str) -> Result<Analysis, SysError> {
        let program = parse_program(src).map_err(WsError::from)?;
        let analysis = analyze(&program, &self.lint);
        if analysis.has_denials() {
            return Err(SysError::Lint(LintError {
                tag: tag.to_string(),
                denials: analysis.denials().cloned().collect(),
            }));
        }
        Ok(analysis)
    }

    /// Installs a program into `who`'s workspace under `tag`, with a
    /// static-analysis preflight: the program is parsed and analyzed
    /// first, and refused outright ([`SysError::Lint`]) if any finding
    /// reaches [`LintLevel::Deny`] under the system's lint
    /// configuration — before the workspace sees it. On success the
    /// [`Analysis`] is returned so callers can surface warn-level
    /// findings and the magic-set applicability report.
    ///
    /// This is the vetted front door for program installation;
    /// [`System::workspace_mut`] + [`Workspace::load`] remains the
    /// unvetted escape hatch (still safety- and stratification-checked,
    /// but not linted).
    pub fn load_program(
        &mut self,
        who: Principal,
        tag: &str,
        src: &str,
    ) -> Result<Analysis, SysError> {
        let analysis = self.preflight(tag, src)?;
        self.workspace_mut(who)?.load(tag, src)?;
        Ok(analysis)
    }

    // ---- the certificate store -----------------------------------------------

    /// A signature verifier over this system's key directory (what the
    /// shared verification cache memoizes).
    pub fn key_verifier(&self) -> KeyVerifier {
        KeyVerifier::new(self.keys.clone())
    }

    /// Borrows a principal's certificate store.
    pub fn cert_store(&self, who: Principal) -> Result<&CertStore, SysError> {
        self.stores.get(&who).ok_or(SysError::UnknownPrincipal(who))
    }

    /// Hit/miss counters of the process-wide verification cache.
    pub fn verify_cache_stats(&self) -> lbtrust_certstore::verify::CacheStats {
        self.vcache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats()
    }

    /// Issues one linked certificate: `issuer` signs `fact_src` (a
    /// single ground fact) citing `links` as supporting credentials,
    /// valid for `ttl` logical ticks (`None` = no expiry).
    pub fn issue_certificate(
        &mut self,
        issuer: Principal,
        fact_src: &str,
        links: &[CertDigest],
        ttl: Option<u64>,
    ) -> Result<LinkedCert, SysError> {
        let mut certs = self.issue_certificates(issuer, fact_src, links, ttl)?;
        if certs.len() != 1 {
            return Err(SysError::Issue(format!(
                "expected one fact, found {}",
                certs.len()
            )));
        }
        Ok(certs.remove(0))
    }

    /// Issues one linked certificate per ground fact in `facts_src`,
    /// all citing `links` and carrying `ttl`.
    pub fn issue_certificates(
        &mut self,
        issuer: Principal,
        facts_src: &str,
        links: &[CertDigest],
        ttl: Option<u64>,
    ) -> Result<Vec<LinkedCert>, SysError> {
        let program = lbtrust_datalog::parse_program(facts_src)
            .map_err(|e| SysError::Issue(e.to_string()))?;
        if !program.constraints.is_empty() {
            return Err(SysError::Issue("certificates carry facts only".into()));
        }
        let guard = self.keys.read();
        let pair = guard
            .rsa(issuer)
            .ok_or(SysError::UnknownPrincipal(issuer))?;
        let mut out = Vec::with_capacity(program.rules.len());
        for rule in program.rules {
            if !rule.is_fact() {
                return Err(SysError::Issue(format!("'{rule}' is not a ground fact")));
            }
            let rule = Arc::new(rule);
            let to_sign = cert::signing_bytes(issuer, &rule, links, ttl);
            let signature = pair
                .private
                .sign(&to_sign)
                .map_err(|e| SysError::Issue(e.to_string()))?;
            let rule_sig = pair
                .private
                .sign(&lbtrust_net::rule_bytes(&rule))
                .map_err(|e| SysError::Issue(e.to_string()))?;
            out.push(LinkedCert {
                issuer,
                rule,
                links: links.to_vec(),
                ttl,
                signature,
                rule_sig,
            });
        }
        Ok(out)
    }

    // ---- fault plane ---------------------------------------------------------

    /// Whether a store error is a storage I/O failure — the class the
    /// step-based retry/quarantine policy covers. Semantic rejections
    /// (bad signatures, broken links, …) and structural storage errors
    /// (unsupported records, oversized checkpoints) are never retried.
    fn is_storage_io(e: &CertStoreError) -> bool {
        matches!(e, CertStoreError::Storage(StorageError::Io { .. }))
    }

    /// A [`DegradedError`] snapshot of `p`'s current health state.
    fn degraded_info(&self, p: Principal) -> DegradedError {
        let h = self.health.get(&p);
        DegradedError {
            principal: p,
            since_step: h.map(|h| h.since_step).unwrap_or_default(),
            attempts: h.map(|h| h.attempts).unwrap_or_default(),
            last_error: h.map(|h| h.last_error.clone()).unwrap_or_default(),
        }
    }

    /// Journals one degradation transition (`store.degraded`,
    /// `store.quarantined`, `store.healed`) when a sink is attached.
    fn journal_health(&self, kind: &str, p: Principal, attempts: u32, detail: &str) {
        if !self.obs.journal.enabled() {
            return;
        }
        let event = Event::new(kind)
            .str_field("principal", &p.to_string())
            .u64_field("step", self.stats.steps as u64)
            .u64_field("attempts", u64::from(attempts))
            .str_field("error", detail);
        self.obs.journal.record(&event);
    }

    /// Moves `p` into quarantine: the store keeps serving reads,
    /// refuses writes with [`DegradedError`], is skipped by group
    /// commit and auto-compaction, and is probed for re-admission each
    /// step once its backoff elapses.
    fn quarantine_store(&mut self, p: Principal, last_error: String) {
        let step = self.stats.steps;
        let policy = self.retry_policy;
        let h = self.health.entry(p).or_default();
        if h.health != StoreHealth::Quarantined {
            h.since_step = step;
        }
        h.health = StoreHealth::Quarantined;
        h.last_error = last_error;
        h.retry_at_step = step + policy.backoff_steps(h.attempts.max(1));
        let attempts = h.attempts;
        let detail = h.last_error.clone();
        self.obs.count_quarantine();
        self.journal_health("store.quarantined", p, attempts, &detail);
    }

    /// Runs one storage operation against `p`'s store, retrying
    /// transient I/O failures immediately up to the policy's
    /// `max_attempts` (safe because the store's durability contract
    /// leaves memory untouched when an append fails). Returns
    /// `Ok(None)` when retries were exhausted and the store was
    /// quarantined; non-storage errors pass through as `Err`.
    fn retry_store_op<T>(
        &mut self,
        p: Principal,
        mut op: impl FnMut(&mut CertStore) -> Result<T, CertStoreError>,
    ) -> Result<Option<T>, SysError> {
        let max = self.retry_policy.max_attempts.max(1);
        let mut failures = 0u32;
        loop {
            let store = self
                .stores
                .get_mut(&p)
                .ok_or(SysError::UnknownPrincipal(p))?;
            match op(store) {
                Ok(v) => {
                    if failures > 0 {
                        let h = self.health.entry(p).or_default();
                        h.attempts = 0;
                        h.health = StoreHealth::Healthy;
                    }
                    return Ok(Some(v));
                }
                Err(e) if Self::is_storage_io(&e) => {
                    failures += 1;
                    self.obs.count_retry();
                    {
                        let h = self.health.entry(p).or_default();
                        h.attempts = h.attempts.saturating_add(1);
                        h.last_error = e.to_string();
                    }
                    if failures >= max {
                        self.quarantine_store(p, e.to_string());
                        return Ok(None);
                    }
                }
                Err(e) => return Err(SysError::Cert(e)),
            }
        }
    }

    /// Refuses writes against a quarantined store with a structured
    /// [`SysError::Degraded`], then runs `op` under immediate retry.
    fn with_store_retry<T>(
        &mut self,
        p: Principal,
        op: impl FnMut(&mut CertStore) -> Result<T, CertStoreError>,
    ) -> Result<T, SysError> {
        if self.store_health(p) == StoreHealth::Quarantined {
            return Err(SysError::Degraded(self.degraded_info(p)));
        }
        match self.retry_store_op(p, op)? {
            Some(v) => Ok(v),
            None => Err(SysError::Degraded(self.degraded_info(p))),
        }
    }

    /// Folds one deferred (group-commit / maintenance) storage failure
    /// into `p`'s health state: transient I/O degrades the store with
    /// step-based backoff and quarantines it once the policy's
    /// `max_attempts` consecutive failures accumulate; any other error
    /// propagates unchanged.
    fn note_store_failure(&mut self, p: Principal, e: CertStoreError) -> Result<(), SysError> {
        if !Self::is_storage_io(&e) {
            return Err(SysError::Cert(e));
        }
        let step = self.stats.steps;
        let policy = self.retry_policy;
        self.obs.count_retry();
        let (attempts, quarantine) = {
            let h = self.health.entry(p).or_default();
            h.attempts = h.attempts.saturating_add(1);
            h.last_error = e.to_string();
            if h.health == StoreHealth::Healthy {
                h.since_step = step;
            }
            let quarantine = h.attempts >= policy.max_attempts.max(1);
            if !quarantine {
                h.health = StoreHealth::Degraded;
                h.retry_at_step = step + policy.backoff_steps(h.attempts);
            }
            (h.attempts, quarantine)
        };
        if quarantine {
            self.quarantine_store(p, e.to_string());
        } else {
            self.journal_health("store.degraded", p, attempts, &e.to_string());
        }
        Ok(())
    }

    /// Clears `p`'s degraded state after a successful deferred commit.
    fn note_store_ok(&mut self, p: Principal) {
        let recovered = {
            let h = self.health.entry(p).or_default();
            let was = h.health;
            h.health = StoreHealth::Healthy;
            h.attempts = 0;
            was == StoreHealth::Degraded
        };
        if recovered {
            self.journal_health("store.healed", p, 0, "deferred commit succeeded");
        }
    }

    /// Whether any store is `Degraded` — a deferred group-commit retry
    /// is pending, so the quiescence loop must keep stepping.
    /// (`Quarantined` stores do *not* hold up quiescence: the system
    /// runs degraded around them.)
    fn retries_pending(&self) -> bool {
        self.health
            .values()
            .any(|h| h.health == StoreHealth::Degraded)
    }

    /// Whether any quarantined store is *probe-eligible*: its fault
    /// handle no longer reports a persistent failure (or it has none),
    /// so an upcoming probe will re-admit it. The quiescence loop keeps
    /// stepping until such stores are back in — while a store whose
    /// fault is still armed lets the system settle into degraded
    /// service instead.
    fn heal_pending(&self) -> bool {
        self.health.iter().any(|(p, h)| {
            h.health == StoreHealth::Quarantined
                && !self
                    .fault_handles
                    .get(p)
                    .is_some_and(FaultHandle::is_persistent)
        })
    }

    /// Imports certificates into `to`'s store (links resolved within
    /// the batch and against already-stored credentials, signatures
    /// checked through the shared cache) and asserts the certified
    /// rules into `to`'s workspace as authenticated imports:
    /// `export[me](issuer, R, S)` — so the declarative `exp2`/`exp3`
    /// pipeline re-verifies and derives `says` — plus `says(issuer, me,
    /// R)` directly for workspaces without the auth prelude.
    pub fn import_certificates(
        &mut self,
        to: Principal,
        certs: Vec<LinkedCert>,
    ) -> Result<Vec<ImportOutcome>, SysError> {
        if !self.workspaces.contains_key(&to) {
            return Err(SysError::UnknownPrincipal(to));
        }
        // Bulk loads fan the expensive signature checks across worker
        // threads first; the store's serial walk then answers every
        // check from the shared cache.
        self.prewarm_verifications(&certs);
        let verifier = self.key_verifier();
        // The bundle import retries as a unit on transient I/O: a
        // failed insert left no trace (append-before-mutate), and
        // already-Active members re-import through the no-append fast
        // path, so a retry is idempotent.
        let outcomes =
            self.with_store_retry(to, |store| store.import_bundle(certs.clone(), &verifier))?;
        // One commit point per bundle under either policy: an
        // acknowledged import is durable, and the fsync amortizes over
        // the whole bundle rather than per certificate. Retried
        // separately from the import so a commit failure after a
        // successful bundle walk cannot re-append anything.
        self.with_store_retry(to, |store| store.sync())?;
        for outcome in &outcomes {
            // Assert facts for fresh imports *and* for live certificates
            // whose facts never landed (a bundle that failed part-way
            // leaves its successful members Active in the store; a retry
            // arrives here with newly_added=false and must still finish
            // the workspace half of the import).
            if self
                .cert_facts
                .get(&to)
                .is_some_and(|m| m.contains_key(&outcome.digest))
            {
                continue;
            }
            let entry = self
                .stores
                .get(&to)
                .expect("store per principal")
                .get(&outcome.digest)
                .expect("just imported")
                .clone();
            let facts = cert_workspace_facts(to, &entry.cert);
            let ws = self.workspaces.get_mut(&to).expect("checked above");
            ws.assert_facts(&facts);
            self.cert_facts
                .entry(to)
                .or_default()
                .insert(outcome.digest, facts);
            self.stats.certs_imported += 1;
        }
        self.workspaces
            .get_mut(&to)
            .expect("checked above")
            .evaluate()?;
        Ok(outcomes)
    }

    /// Verifies a bundle's signatures in parallel, priming the shared
    /// cache with the outcomes. A no-op for bundles below
    /// [`PARALLEL_VERIFY_MIN`] or when everything is already cached.
    /// Correctness is unchanged: the store re-asks the cache for every
    /// signature and any outcome not primed here is checked serially.
    fn prewarm_verifications(&mut self, certs: &[LinkedCert]) {
        if certs.len() < PARALLEL_VERIFY_MIN {
            return;
        }
        // Both signatures of every certificate, deduplicated against
        // outcomes the cache already holds.
        let mut jobs: Vec<(Symbol, Vec<u8>, &[u8])> = Vec::with_capacity(certs.len() * 2);
        {
            let cache = self.vcache.lock().unwrap_or_else(|e| e.into_inner());
            for cert in certs {
                let signing = cert.signing_bytes();
                if !cache.is_cached(cert.issuer, &signing, &cert.signature) {
                    jobs.push((cert.issuer, signing, &cert.signature));
                }
                let rule = cert.rule_bytes();
                if !cache.is_cached(cert.issuer, &rule, &cert.rule_sig) {
                    jobs.push((cert.issuer, rule, &cert.rule_sig));
                }
            }
        }
        if jobs.is_empty() {
            return;
        }
        // At least two workers so the fan-out is real even on
        // single-core hosts (the checks are pure CPU; extra threads
        // cost one spawn each and change no outcome), scaling up with
        // the machine.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(2, 16)
            .min(jobs.len());
        let verifier = self.key_verifier();
        let chunk = jobs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for part in jobs.chunks(chunk) {
                let verifier = &verifier;
                let vcache = &self.vcache;
                scope.spawn(move || {
                    for (signer, message, signature) in part {
                        let ok = verifier.verify(*signer, message, signature);
                        vcache
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .prime(*signer, message, signature, ok);
                    }
                });
            }
        });
        self.stats.parallel_verify_batches += 1;
    }

    /// Re-imports certificates already held by `to`: answered from the
    /// store and the verification cache without fresh signature checks
    /// or workspace work. (The cached fast path the `ablation_certstore`
    /// bench measures.)
    pub fn reimport_certificates(
        &mut self,
        to: Principal,
        certs: &[LinkedCert],
    ) -> Result<Vec<ImportOutcome>, SysError> {
        let verifier = self.key_verifier();
        let outcomes = self.with_store_retry(to, |store| {
            let mut outcomes = Vec::with_capacity(certs.len());
            for cert in certs {
                outcomes.push(store.insert(cert.clone(), &verifier)?);
            }
            Ok(outcomes)
        })?;
        self.with_store_retry(to, |store| store.sync())?;
        Ok(outcomes)
    }

    /// Revokes a certificate `issuer` issued: applies the signed
    /// revocation to every local store immediately (retracting the
    /// certificate's facts through DRed) and broadcasts a `revoke`
    /// packet to every other principal's node, so stores across the
    /// (simulated) deployment converge during the next
    /// [`System::run_to_quiescence`].
    pub fn revoke_certificate(
        &mut self,
        issuer: Principal,
        digest: CertDigest,
    ) -> Result<(), SysError> {
        let signing = lbtrust_net::revoke_signing_bytes(issuer, digest.as_bytes());
        let signature = {
            let guard = self.keys.read();
            let pair = guard
                .rsa(issuer)
                .ok_or(SysError::UnknownPrincipal(issuer))?;
            pair.private
                .sign(&signing)
                .map_err(|e| SysError::Issue(e.to_string()))?
        };
        let revocation = Revocation {
            issuer,
            target: digest,
            signature: signature.clone(),
        };
        // Local application at the issuer's node is immediate …
        self.apply_revocation(issuer, &revocation)?;
        // … and everybody else learns over the wire.
        let from_node = self.node_of(issuer);
        for &other in &self.order.clone() {
            if other == issuer {
                continue;
            }
            let to_node = self.node_of(other);
            let packet = WirePacket::Revoke(RevokeMessage {
                from: issuer,
                to: other,
                digest: *digest.as_bytes(),
                auth: signature.clone(),
            });
            self.send_packet(from_node, to_node, lbtrust_net::encode_packet(&packet));
        }
        Ok(())
    }

    /// Hands one payload to the network, counting it in
    /// [`SystemStats::messages_sent`] only when the network actually
    /// enqueued it — the loss model's drops are the network's
    /// [`lbtrust_net::NetworkStats::dropped`], not messages this system
    /// sent, so `messages_sent == net.sent - net.dropped` holds by
    /// construction (the reconciliation Figure 2's x-axis relies on).
    fn send_packet(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>) -> bool {
        let enqueued = self.net.send(from, to, payload);
        if enqueued {
            self.stats.messages_sent += 1;
        }
        enqueued
    }

    /// Applies a verified revocation at one principal: marks the store,
    /// then retracts every workspace fact a dying certificate
    /// introduced — incrementally via DRed where the program admits it.
    /// Re-applying an already-known revocation is a no-op that counts
    /// nothing.
    fn apply_revocation(&mut self, at: Principal, revocation: &Revocation) -> Result<(), SysError> {
        let verifier = self.key_verifier();
        let eager = self.sync_policy == SyncPolicy::Eager;
        // The mutation and its fsync retry separately: once the revoke
        // has appended and applied, a retried call would hit the
        // idempotence gate and lose the retraction events.
        let outcome =
            self.with_store_retry(at, |store| store.revoke_with_outcome(revocation, &verifier))?;
        if outcome.applied && outcome.authoritative {
            self.stats.revocations += 1;
            self.retract_cert_facts(at, &outcome.events);
        }
        if eager {
            // A persistent commit failure quarantines the store, but
            // the revocation is applied in memory and the workspace
            // already retracted — the heal-time flush makes it durable.
            self.with_store_retry(at, |store| store.sync())?;
        }
        Ok(())
    }

    /// Advances every store's logical clock by `ticks`, expiring
    /// overdue certificates and retracting their facts (TTL freshness).
    /// Returns the number of certificates that died.
    pub fn advance_time(&mut self, ticks: u64) -> Result<usize, SysError> {
        let mut died = 0;
        let eager = self.sync_policy == SyncPolicy::Eager;
        for &p in &self.order.clone() {
            // Quarantined stores must not lose time: the ticks
            // accumulate and apply at re-admission — graceful
            // degradation, not an error, since the caller is advancing
            // the whole deployment.
            if self.store_health(p) == StoreHealth::Quarantined {
                self.health.entry(p).or_default().pending_ticks += ticks;
                continue;
            }
            let Some(events) = self.retry_store_op(p, |store| store.advance_clock(ticks))? else {
                // Quarantined just now: the tick record never appended
                // (append-before-mutate), so it joins the deferred
                // balance like any other.
                self.health.entry(p).or_default().pending_ticks += ticks;
                continue;
            };
            died += events.len();
            self.retract_cert_facts(p, &events);
            if eager {
                // Commit failure only defers durability: the expiry is
                // applied in memory and the heal-time flush catches up.
                let _ = self.retry_store_op(p, |store| store.sync())?;
            }
        }
        Ok(died)
    }

    /// Audit query: which credential(s) introduced the certified rule
    /// `rule_src` into `who`'s store? Answers from the store's
    /// append-only audit trail, so the citation survives the
    /// credential's revocation, expiry, tombstone eviction — and, for
    /// durable stores, process restarts.
    pub fn audit_introducers(
        &self,
        who: Principal,
        rule_src: &str,
    ) -> Result<Vec<AuditEntry>, SysError> {
        let rule =
            lbtrust_datalog::parse_rule(rule_src).map_err(|e| SysError::Issue(e.to_string()))?;
        let store = self.cert_store(who)?;
        Ok(store
            .audit()
            .introducers(&rule.to_string())
            .into_iter()
            .cloned()
            .collect())
    }

    /// Decides whether `goal` holds in `who`'s workspace and cites the
    /// credentials the decision rests on: the proof tree is walked for
    /// `says` premises, and each certified rule is traced back through
    /// the store's audit trail to the digest(s) of the certificate(s)
    /// that introduced it (the same citation [`System::audit_introducers`]
    /// answers). The decision increments `authz.granted`/`authz.denied`
    /// and, when a journal sink is attached
    /// ([`System::enable_decision_journal`]), is recorded as an
    /// `authorize` event carrying the supporting digests.
    pub fn authorize(&self, who: Principal, goal: &str) -> Result<AuthzDecision, SysError> {
        let ws = self.workspace(who)?;
        let proof = ws.explain_proof(goal)?;
        let granted = proof.is_some();
        let supporting: Vec<CertDigest> = match &proof {
            Some(proof) => {
                // The store maintains the ground-head index (bodyless
                // certificates' head facts → content address) and the
                // audit trail maintains the introducer index
                // incrementally, so citation is hash probes — no
                // per-call rescan of the active set, no tuple clones,
                // and the digest sort runs on raw bytes.
                let store = self.cert_store(who)?;
                collect_supporting(proof, store.ground_heads(), |rule_src, out| {
                    for entry in store.audit().introducers(rule_src) {
                        out.push(entry.digest);
                    }
                })
            }
            None => Vec::new(),
        };
        if granted {
            self.obs.authz_granted.inc();
        } else {
            self.obs.authz_denied.inc();
        }
        if self.obs.journal.enabled() {
            self.obs.journal.record(
                &Event::new("authorize")
                    .str_field("principal", who.as_str())
                    .str_field("goal", goal)
                    .bool_field("granted", granted)
                    .list_field(
                        "supporting",
                        supporting.iter().map(|d| d.to_hex()).collect(),
                    ),
            );
        }
        Ok(AuthzDecision {
            principal: who,
            goal: goal.to_string(),
            granted,
            supporting,
            proof: proof.map(|p| p.render()),
        })
    }

    /// Publishes a fresh [`crate::AuthzSnapshot`] of every principal's
    /// current state for the concurrent read path: [`AuthzReader`]
    /// handles answer against it lock-free while this system keeps
    /// mutating. Called automatically at every quiescent point of
    /// [`System::run_to_quiescence`]; callers streaming imports or
    /// revocations outside the fixpoint (e.g. [`System::apply_revocation`]
    /// via [`System::revoke_certificate`]) publish explicitly to make
    /// those changes visible to readers.
    ///
    /// Publication also settles the decision cache: a window in which a
    /// principal changed *only* by incremental DRed retractions keeps
    /// its cache version and drops exactly the decisions citing a dead
    /// certificate, while any other change (imports, rule changes,
    /// non-monotonic rebuilds — detected by comparing workspace-epoch
    /// movement against the counted retraction repairs) bumps the
    /// version and orphans the principal's older entries wholesale.
    /// Either way a cached grant never outlives a revocation of its
    /// support.
    pub fn publish_authz_snapshot(&mut self) {
        let started = Instant::now();
        let mut principals = HashMap::with_capacity(self.order.len());
        for &p in &self.order {
            let ws = self.workspaces.get(&p).expect("registered");
            // Quarantined stores stay registered and keep serving
            // reads (the PR 8 degradation contract), so they publish
            // like healthy ones.
            let store = self.stores.get(&p).expect("registered");
            let pub_state = self.authz_pub.entry(p).or_default();
            let epoch = ws.epoch();
            let store_version = store.version();
            if pub_state.snap.is_some()
                && epoch == pub_state.published_epoch
                && store_version == pub_state.published_store_version
            {
                // Unchanged since the last publish: share the Arc.
                pub_state.poisoned.clear();
                pub_state.retraction_bumps = 0;
                let snap = pub_state.snap.clone().expect("checked above");
                principals.insert(p, snap);
                continue;
            }
            let epoch_delta = epoch.wrapping_sub(pub_state.published_epoch);
            if pub_state.snap.is_some() && epoch_delta == pub_state.retraction_bumps {
                // Retraction-only window: every workspace change was an
                // incremental DRed repair (facts only disappeared), so
                // a cached deny cannot have flipped and a cached grant
                // is stale exactly when it cites a dead certificate.
                // Drop precisely those; the version (and every other
                // cached decision) survives.
                if !pub_state.poisoned.is_empty() {
                    let poisoned: HashSet<CertDigest> = pub_state.poisoned.drain(..).collect();
                    self.authz_shared
                        .invalidate_poisoned(p, pub_state.authz_version, &poisoned);
                }
            } else {
                // Arbitrary change (fresh imports, rule loads, a
                // non-monotonic rebuild, a rollback): no per-entry
                // attribution is possible, so the version bump orphans
                // the principal's cached decisions wholesale and the
                // 2Q eviction reclaims them.
                pub_state.authz_version += 1;
            }
            pub_state.poisoned.clear();
            pub_state.retraction_bumps = 0;
            pub_state.published_epoch = epoch;
            pub_state.published_store_version = store_version;
            let snap = Arc::new(PrincipalSnapshot {
                me: p,
                rules: ws
                    .active_rules()
                    .iter()
                    .map(|r| r.as_ref().clone())
                    .collect(),
                db: ws.db().clone(),
                builtins: ws.builtins().clone(),
                ground_heads: store.ground_heads().clone(),
                introducers: store.audit().introducer_digests(),
                authz_version: pub_state.authz_version,
                store_version,
            });
            pub_state.snap = Some(snap.clone());
            principals.insert(p, snap);
        }
        self.authz_shared.cell.publish(crate::AuthzSnapshot {
            generation: 0, // stamped by the cell
            principals,
        });
        if self.obs.timing_enabled() {
            self.authz_shared
                .publish_ns
                .record_duration(started.elapsed());
        }
    }

    /// Publishes the current state and hands out a `Send + Sync`
    /// [`AuthzReader`] evaluating `authorize()` against published
    /// snapshots from any thread, without borrowing the system. Clone
    /// the handle (or call this again) for more reader threads; all
    /// handles share one decision cache and see each newly published
    /// snapshot within one atomic load.
    pub fn authz_reader(&mut self) -> AuthzReader {
        self.publish_authz_snapshot();
        AuthzReader::new(self.authz_shared.clone())
    }

    /// Retracts the workspace facts behind each retraction event in one
    /// batched DRed pass per principal.
    fn retract_cert_facts(&mut self, at: Principal, events: &[lbtrust_certstore::RetractionEvent]) {
        // Every dying certificate poisons the cached decisions citing
        // it, whether or not its facts were still asserted here.
        let pub_state = self.authz_pub.entry(at).or_default();
        pub_state.poisoned.extend(events.iter().map(|e| e.digest));
        let mut batch: Vec<(Symbol, Tuple)> = Vec::new();
        if let Some(my_facts) = self.cert_facts.get_mut(&at) {
            for event in events {
                if let Some(facts) = my_facts.remove(&event.digest) {
                    batch.extend(facts);
                }
            }
        }
        if batch.is_empty() {
            return;
        }
        let ws = self.workspaces.get_mut(&at).expect("registered");
        self.stats.retractions += batch.len();
        match ws.retract_facts(&batch) {
            RetractOutcome::Incremental(_) => {
                self.stats.dred_repairs += 1;
                // One incremental repair = exactly one workspace epoch
                // bump; the publish path matches these totals to tell
                // "retraction-only" windows (precise cache
                // invalidation) from arbitrary change (version bump).
                self.authz_pub.entry(at).or_default().retraction_bumps += 1;
            }
            RetractOutcome::Deferred => self.stats.retraction_rebuilds += 1,
            RetractOutcome::Noop => {}
        }
    }

    // ---- the distributed fixpoint ---------------------------------------------

    /// Runs every workspace to its local fixpoint, ships export tuples,
    /// delivers messages (triggering imports), and repeats until no
    /// workspace derives anything new and the network is empty.
    ///
    /// With [`System::set_shards`] above 1, the local-fixpoint,
    /// export-drain and delivery-import phases run in parallel across
    /// worker shards, each owning a disjoint contiguous slice of the
    /// registration order; placement updates, network traffic and
    /// statistics are merged sequentially in that same order, so every
    /// shard count reaches the identical quiescent state.
    ///
    /// Messages whose import violates the receiver's verification
    /// constraint are rejected (the receiving workspace rolls back) and
    /// counted in [`SystemStats::messages_rejected`].
    pub fn run_to_quiescence(&mut self, max_steps: usize) -> Result<SystemStats, SysError> {
        let export = Symbol::intern("export");
        let loc = Symbol::intern("loc");
        // One snapshot of the registration order per call (it cannot
        // change mid-run); the phases below each borrow the system
        // mutably, so re-cloning inside the step loop would cost five
        // allocations per step.
        let order = self.order.clone();
        for _ in 0..max_steps {
            self.stats.steps += 1;
            // Advance the network's fault clock: heal partitions whose
            // deadline arrived and release messages the delay model
            // held for this step.
            self.net.begin_step();
            let step_started = self.obs.phase_timer();
            // 0. Gossip inputs: refresh each workspace's `revfp` facts
            // from its store and learn whether any two stores' summaries
            // still disagree. Sequential in registration order (cheap:
            // fingerprints are maintained per store).
            let t = self.obs.phase_timer();
            let divergent = self.prepare_gossip(&order);
            self.obs.record_phase(QuiescePhase::GossipPrepare, t);
            // 1. Local fixpoints, one worker per shard. A constraint
            // violation rolls the offending workspace back to its last
            // good state (the paper's fail-with-error semantics) and
            // the system carries on.
            let t = self.obs.phase_timer();
            self.local_fixpoints(&order)?;
            self.obs.record_phase(QuiescePhase::Fixpoint, t);
            // 1b. Data-driven placement (§5.2 ld1/ld2): `loc(P, N)`
            // facts derived in any workspace update the placement map —
            // "users can easily enforce various distribution plans by
            // modifying the loc table". Sequential, in registration
            // order, so conflicting placements resolve deterministically.
            let t = self.obs.phase_timer();
            self.update_placement(&order, loc);
            self.obs.record_phase(QuiescePhase::Placement, t);
            // 2. Drain fresh export tuples into the network: shards
            // scan their workspaces in parallel, the send itself is a
            // sequential merge so delivery order stays deterministic.
            let t = self.obs.phase_timer();
            let shipped = self.drain_exports(&order, export);
            self.obs.record_phase(QuiescePhase::ExportDrain, t);
            // 2b. Gossip round: while stores disagree, ship the
            // `revsummary`/`revpull` messages the gossip program
            // derived. Dormant once every store holds the same
            // revocation objects — the anti-entropy traffic stops, so
            // the system can quiesce. Sequential merge, like phase 2.
            let t = self.obs.phase_timer();
            let gossip_sent = if divergent {
                self.gossip_sends(&order)
            } else {
                0
            };
            self.obs.record_phase(QuiescePhase::GossipSend, t);
            // 3. Deliver and import, routed per destination shard
            // (answering gossip pulls with `revgossip` frames).
            let t = self.obs.phase_timer();
            let delivered = self.deliver_and_import(&order, export)?;
            self.obs.record_phase(QuiescePhase::Delivery, t);
            // 4. Group commit: under `Batched`, every store that
            // appended during this step syncs exactly once, here.
            if self.sync_policy == SyncPolicy::Batched {
                let t = self.obs.phase_timer();
                self.sync_stores(&order)?;
                self.obs.record_phase(QuiescePhase::GroupCommit, t);
            }
            // 5. Fault-plane recovery: probe quarantined stores whose
            // backoff elapsed and re-admit the ones whose fault healed
            // (deferred group-commit retries already ran in phase 4).
            let t = self.obs.phase_timer();
            let healed = self.probe_quarantined(&order)?;
            self.obs.record_phase(QuiescePhase::FaultRecovery, t);
            self.obs.record_phase(QuiescePhase::Step, step_started);
            // Quiescent when nothing was shipped or delivered this step
            // (local fixpoints already ran), gossip is dormant, no
            // message sits delayed inside the network, no deferred
            // commit retry is pending, and no store was just re-admitted
            // (a fresh re-admission needs at least one more round so
            // anti-entropy can repair what the store missed).
            // Quarantined stores whose fault is still armed do NOT
            // hold up quiescence — the system settles into degraded
            // service around them; ones whose fault healed keep the
            // loop alive until a probe re-admits them.
            if shipped == 0
                && delivered == 0
                && gossip_sent == 0
                && healed == 0
                && !self.net.has_pending()
                && !self.retries_pending()
                && !self.heal_pending()
            {
                self.publish_obs();
                self.publish_authz_snapshot();
                return Ok(self.stats);
            }
        }
        Err(SysError::NoQuiescence { steps: max_steps })
    }

    /// Gossip phase 0: recompute every store's revocation summary,
    /// reconcile each workspace's `revfp` facts with it (retracting the
    /// stale fingerprint fact a changed one replaces, so the program's
    /// derivations repair through DRed), and report whether any two
    /// stores disagree. A no-op returning `false` when gossip is off —
    /// and cheap when it is on but converged: unchanged fingerprints
    /// assert nothing.
    fn prepare_gossip(&mut self, order: &[Principal]) -> bool {
        let Some(gossip) = self.gossip.as_mut() else {
            return false;
        };
        // Per-store summaries, registration order. Each is sorted by
        // signer name, so plain equality compares the summaries.
        let mut summaries: Vec<Vec<(Symbol, String)>> = Vec::with_capacity(order.len());
        for p in order {
            summaries.push(
                self.stores
                    .get(p)
                    .expect("registered")
                    .revocation_fingerprints()
                    .into_iter()
                    .map(|(signer, fp)| (signer, fingerprint_hex(&fp)))
                    .collect(),
            );
        }
        // The divergence oracle compares *writable* stores only: a
        // quarantined store cannot absorb gossip (its appends fail), so
        // letting it hold the oracle open would generate repair traffic
        // forever and the system could never settle into degraded
        // service. The moment the store heals it re-enters the
        // comparison, the oracle trips, and anti-entropy repairs it.
        let writable: Vec<&Vec<(Symbol, String)>> = order
            .iter()
            .zip(&summaries)
            .filter(|(p, _)| {
                self.health
                    .get(*p)
                    .is_none_or(|h| h.health != StoreHealth::Quarantined)
            })
            .map(|(_, s)| s)
            .collect();
        let divergent = writable.windows(2).any(|w| w[0] != w[1]);
        // Every signer any store has something for: each workspace
        // carries a `revfp` fact per such signer ([`ZERO_FP_HEX`] where
        // the local store holds nothing), so the program's diff rule
        // can fire for signers the local store has never heard of.
        let mut signers: BTreeSet<&str> = BTreeSet::new();
        for summary in &summaries {
            for (signer, _) in summary {
                signers.insert(signer.as_str());
            }
        }
        let signers: Vec<Symbol> = signers.into_iter().map(Symbol::intern).collect();
        for (p, summary) in order.iter().zip(&summaries) {
            let local: HashMap<Symbol, &str> = summary
                .iter()
                .map(|(signer, hex)| (*signer, hex.as_str()))
                .collect();
            let cache = gossip.fps.entry(*p).or_default();
            let mut stale: Vec<(Symbol, Tuple)> = Vec::new();
            let mut fresh: Vec<(Symbol, Tuple)> = Vec::new();
            for &signer in &signers {
                let desired = local.get(&signer).copied().unwrap_or(ZERO_FP_HEX);
                match cache.get(&signer) {
                    Some(prev) if prev == desired => continue,
                    Some(prev) => stale.push(revfp_fact(*p, signer, prev)),
                    None => {}
                }
                fresh.push(revfp_fact(*p, signer, desired));
                cache.insert(signer, desired.to_string());
            }
            if stale.is_empty() && fresh.is_empty() {
                continue;
            }
            let ws = self.workspaces.get_mut(p).expect("registered");
            if !stale.is_empty() {
                ws.retract_facts(&stale);
            }
            ws.assert_facts(&fresh);
        }
        divergent
    }

    /// Gossip phase 2b: ship every `revsummary`/`revpull` message the
    /// program derived, sequentially in registration order (and in a
    /// name-sorted order within each workspace), so the traffic —
    /// and therefore the seeded network's loss pattern — is identical
    /// for every shard count. Returns the number of messages handed to
    /// the network (dropped or not: an attempt is a round's work, and
    /// quiescence must wait for the retry).
    fn gossip_sends(&mut self, order: &[Principal]) -> usize {
        let gsays = Symbol::intern(GOSSIP_SAYS);
        let mut total = 0usize;
        for &p in order {
            let tuples = self.workspaces.get(&p).expect("registered").tuples(gsays);
            let mut sends: Vec<GossipSend> = tuples
                .iter()
                .filter_map(|t| parse_gossip_send(p, t))
                .collect();
            sends.sort_by(|a, b| gossip_send_key(a).cmp(&gossip_send_key(b)));
            sends.dedup();
            let from_node = self.node_of(p);
            for send in sends {
                let to_node = self.node_of(send.to());
                let payload = match &send {
                    GossipSend::Summary {
                        to,
                        issuer,
                        fingerprint,
                    } => {
                        self.stats.gossip_summaries += 1;
                        lbtrust_net::encode_packet(&WirePacket::RevSummary(RevSummaryMessage {
                            from: p,
                            to: *to,
                            issuer: *issuer,
                            fingerprint: fingerprint.clone(),
                        }))
                    }
                    GossipSend::Pull { to, issuer } => {
                        self.stats.gossip_pulls += 1;
                        lbtrust_net::encode_packet(&WirePacket::RevPull(RevPullMessage {
                            from: p,
                            to: *to,
                            issuer: *issuer,
                        }))
                    }
                };
                self.send_packet(from_node, to_node, payload);
                total += 1;
            }
        }
        if total > 0 {
            self.stats.gossip_rounds += 1;
        }
        total
    }

    /// Phase 1: every workspace to its local fixpoint, partitioned
    /// across shards. Constraint violations are rollbacks (counted);
    /// any other evaluation error aborts the run.
    fn local_fixpoints(&mut self, order: &[Principal]) -> Result<(), SysError> {
        let workers = clamp_shards(self.shards, order.len());
        if workers <= 1 || self.pool.is_none() {
            // Serial fast path: iterate directly — no pool, no task
            // moves. Costs still refresh so a later `set_shards` call
            // starts from a real estimate.
            let started = self.obs.phase_timer();
            for &p in order {
                let ws = self.workspaces.get_mut(&p).expect("registered");
                let eval_started = (self.cost_model == CostModel::WallTime).then(Instant::now);
                match ws.evaluate() {
                    Ok(stats) => {
                        let cost = match eval_started {
                            Some(t) => wall_cost(t),
                            None => deterministic_cost(&stats),
                        };
                        self.costs.insert(p, cost);
                    }
                    Err(WsError::Constraint(_)) => {
                        self.stats.local_rollbacks += 1;
                        self.costs.insert(p, 1);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if let Some(s) = started {
                self.obs.record_shard_fixpoint(0, s.elapsed());
            }
            return Ok(());
        }
        let pool = self.pool.as_ref().expect("pool exists when shards > 1");
        // Move each workspace out for the duration of the batch; the
        // merge below reinserts in registration order.
        let tasks: Vec<PoolTask> = order
            .iter()
            .map(|p| PoolTask::Fixpoint {
                ws: self.workspaces.remove(p).expect("registered"),
                time: self.cost_model == CostModel::WallTime,
            })
            .collect();
        let costs: Vec<u64> = order
            .iter()
            .map(|p| self.costs.get(p).copied().unwrap_or(1))
            .collect();
        let queues = match self.partition {
            PartitionStrategy::Contiguous => split_contiguous(tasks, pool.workers()),
            PartitionStrategy::CostAware => split_lpt(tasks, &costs, pool.workers()),
        };
        let report = pool.run_batch(queues, self.stealing);
        self.obs.record_pool_batch(report.steals, report.tasks);
        // Per-worker busy time feeds the shard histograms (and through
        // them the imbalance gauge): with stealing on, this is the
        // *actual* load each worker carried, not the planned partition.
        for (w, nanos) in report.busy.iter().enumerate() {
            self.obs
                .record_shard_fixpoint(w, Duration::from_nanos(*nanos));
        }
        let mut first_error: Option<WsError> = None;
        for (i, done) in report.results.into_iter().enumerate() {
            let p = order[i];
            let PoolDone::Fixpoint { ws, result, nanos } = done else {
                unreachable!("fixpoint batches return fixpoint results");
            };
            self.workspaces.insert(p, ws);
            match result {
                Ok(stats) => {
                    let cost = match self.cost_model {
                        CostModel::Deterministic => deterministic_cost(&stats),
                        CostModel::WallTime => nanos.max(1),
                    };
                    self.costs.insert(p, cost);
                }
                Err(WsError::Constraint(_)) => {
                    self.stats.local_rollbacks += 1;
                    self.costs.insert(p, 1);
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Phase 1b: fold derived `loc(P, N)` facts into the placement map.
    fn update_placement(&mut self, order: &[Principal], loc: Symbol) {
        for &p in order {
            let tuples = self.workspaces.get(&p).expect("registered").tuples(loc);
            for t in tuples {
                if let [Value::Sym(who), Value::Sym(node)] = t.as_slice() {
                    self.placement.insert(*who, NodeId::from(*node));
                }
            }
        }
    }

    /// Phase 2: collect fresh export tuples and send them, sequentially
    /// and in registration order so the network delivers in the same
    /// order every run. This phase stays serial on purpose — the scan
    /// is a dedup over each workspace's export partition, far cheaper
    /// than the evaluation phases the shards split, and cheaper than a
    /// round of worker spawns.
    fn drain_exports(&mut self, order: &[Principal], export: Symbol) -> usize {
        let mut shipped = 0usize;
        for &me in order {
            let tuples: Vec<Tuple> = self.workspaces.get(&me).expect("registered").tuples(export);
            let seen = self.drained.get_mut(&me).expect("registered");
            let mut outgoing: Vec<WireMessage> = Vec::new();
            for tuple in tuples {
                if !seen.insert(tuple_fingerprint(&tuple)) {
                    continue;
                }
                let Some(msg) = export_tuple_to_message(&tuple) else {
                    continue;
                };
                // Tuples addressed *to* this principal are received
                // imports sitting in its own export[me] partition, not
                // outgoing traffic.
                if msg.to == me {
                    continue;
                }
                outgoing.push(msg);
            }
            for msg in outgoing {
                let from_node = self.node_of(me);
                let to_node = self.node_of(msg.to);
                // A drop still counts as shipped for quiescence
                // purposes (the workspace export moved into the
                // network's hands this step), but not as a sent
                // message — see `send_packet`.
                self.send_packet(from_node, to_node, lbtrust_net::encode(&msg));
                shipped += 1;
            }
        }
        shipped
    }

    /// Phase 3: drain the network sequentially (envelope order is part
    /// of the deterministic semantics), routing each packet to its
    /// destination principal; then let each destination shard verify,
    /// import, evaluate and retract in parallel. Deliveries are batched
    /// per destination (one evaluation per workspace per step); when a
    /// batch trips the verification constraint, the batch rolls back
    /// and messages are retried one at a time so only the offending
    /// ones are rejected.
    fn deliver_and_import(
        &mut self,
        order: &[Principal],
        export: Symbol,
    ) -> Result<usize, SysError> {
        let mut delivered = 0usize;
        let mut inbox: HashMap<Principal, Vec<Tuple>> = HashMap::new();
        // A wire revocation plus how to apply it: `false` for the eager
        // broadcast (issuer-mismatch objects are rejected), `true` for
        // gossip-relayed objects (absorbed tolerantly so anti-entropy
        // converges).
        let mut revocations: HashMap<Principal, Vec<(Revocation, bool)>> = HashMap::new();
        // Gossip advertisements per destination, in delivery order.
        let mut summaries: HashMap<Principal, Vec<(Symbol, Symbol, String)>> = HashMap::new();
        // Gossip pulls `(responder, requester, issuer)`, in delivery
        // order — answered sequentially after the destination shards
        // ran, from each responder's then-current store.
        let mut pulls: Vec<(Principal, Symbol, Symbol)> = Vec::new();
        let gossip_on = self.gossip.is_some();
        while let Some(envelope) = self.net.deliver_next() {
            delivered += 1;
            let Ok(packet) = lbtrust_net::decode_packet(&envelope.payload) else {
                self.stats.messages_rejected += 1;
                continue;
            };
            match packet {
                WirePacket::Export(msg) => {
                    if !self.workspaces.contains_key(&msg.to) {
                        self.stats.messages_rejected += 1;
                        continue;
                    }
                    inbox.entry(msg.to).or_default().push(vec![
                        Value::Sym(msg.to),
                        Value::Sym(msg.from),
                        Value::Quote(msg.rule.clone()),
                        Value::bytes(&msg.auth),
                    ]);
                }
                // A revocation notice: applied to the receiver's store
                // by its destination shard below. Unknown receivers
                // count as rejections immediately, as do gossip frames
                // while gossip is off.
                WirePacket::Revoke(rev) => {
                    if !self.workspaces.contains_key(&rev.to) {
                        self.stats.messages_rejected += 1;
                        continue;
                    }
                    revocations.entry(rev.to).or_default().push((
                        Revocation {
                            issuer: rev.from,
                            target: CertDigest(rev.digest),
                            signature: rev.auth,
                        },
                        false,
                    ));
                }
                WirePacket::RevGossip(rev) => {
                    if !gossip_on || !self.workspaces.contains_key(&rev.to) {
                        self.stats.messages_rejected += 1;
                        continue;
                    }
                    revocations.entry(rev.to).or_default().push((
                        Revocation {
                            issuer: rev.from,
                            target: CertDigest(rev.digest),
                            signature: rev.auth,
                        },
                        true,
                    ));
                }
                WirePacket::RevSummary(msg) => {
                    if !gossip_on
                        || !self.workspaces.contains_key(&msg.to)
                        || !self.workspaces.contains_key(&msg.from)
                    {
                        self.stats.messages_rejected += 1;
                        continue;
                    }
                    summaries.entry(msg.to).or_default().push((
                        msg.from,
                        msg.issuer,
                        msg.fingerprint,
                    ));
                }
                WirePacket::RevPull(msg) => {
                    if !gossip_on
                        || !self.workspaces.contains_key(&msg.to)
                        || !self.workspaces.contains_key(&msg.from)
                    {
                        self.stats.messages_rejected += 1;
                        continue;
                    }
                    pulls.push((msg.to, msg.from, msg.issuer));
                }
            }
        }
        if inbox.is_empty() && revocations.is_empty() && summaries.is_empty() {
            self.serve_pulls(&pulls);
            return Ok(delivered);
        }
        let destinations: Vec<Principal> = order
            .iter()
            .copied()
            .filter(|p| {
                inbox.contains_key(p) || revocations.contains_key(p) || summaries.contains_key(p)
            })
            .collect();
        for &p in &destinations {
            self.cert_facts.entry(p).or_default();
            if let Some(gossip) = self.gossip.as_mut() {
                gossip.inbox.entry(p).or_default();
            }
        }
        let workers = clamp_shards(self.shards, destinations.len());
        let verifier = self.key_verifier();
        let eager = self.sync_policy == SyncPolicy::Eager;
        if workers <= 1 || self.pool.is_none() {
            // Serial fast path: process destinations in registration
            // order without the per-shard reference maps. Outcomes are
            // merged before an error propagates, so the statistics
            // always reflect the mutations actually applied.
            for p in destinations {
                let task = DeliveryTask {
                    ws: self.workspaces.get_mut(&p).expect("registered"),
                    store: self.stores.get_mut(&p).expect("registered"),
                    facts: self.cert_facts.get_mut(&p).expect("entry ensured above"),
                    gossip_inbox: self
                        .gossip
                        .as_mut()
                        .map(|g| g.inbox.get_mut(&p).expect("entry ensured above")),
                    revocations: revocations.remove(&p).unwrap_or_default(),
                    summaries: summaries.remove(&p).unwrap_or_default(),
                    tuples: inbox.remove(&p).unwrap_or_default(),
                };
                let (outcome, error) = process_destination(task, &verifier, eager, export);
                self.merge_delivery(p, outcome);
                if let Some(e) = error {
                    return Err(e.into());
                }
            }
            self.serve_pulls(&pulls);
            return Ok(delivered);
        }
        // Pooled path: each destination's state moves out as one owned
        // job, runs on whichever worker claims (or steals) it, and
        // merges back in registration order — so delivery statistics
        // and workspace states are identical to the serial engine's.
        let gossip_on = self.gossip.is_some();
        let jobs: Vec<PoolTask> = destinations
            .iter()
            .map(|p| {
                PoolTask::Delivery(Box::new(DeliveryJob {
                    ws: self.workspaces.remove(p).expect("registered"),
                    store: self.stores.remove(p).expect("registered"),
                    facts: self.cert_facts.remove(p).expect("entry ensured above"),
                    gossip_inbox: if gossip_on {
                        Some(
                            self.gossip
                                .as_mut()
                                .expect("gossip on")
                                .inbox
                                .remove(p)
                                .expect("entry ensured above"),
                        )
                    } else {
                        None
                    },
                    revocations: revocations.remove(p).unwrap_or_default(),
                    summaries: summaries.remove(p).unwrap_or_default(),
                    tuples: inbox.remove(p).unwrap_or_default(),
                    verifier: verifier.clone(),
                    eager,
                    export,
                }))
            })
            .collect();
        let costs: Vec<u64> = destinations
            .iter()
            .map(|p| self.costs.get(p).copied().unwrap_or(1))
            .collect();
        let pool = self.pool.as_ref().expect("pool exists when shards > 1");
        let queues = match self.partition {
            PartitionStrategy::Contiguous => split_contiguous(jobs, pool.workers()),
            PartitionStrategy::CostAware => split_lpt(jobs, &costs, pool.workers()),
        };
        let report = pool.run_batch(queues, self.stealing);
        self.obs.record_pool_batch(report.steals, report.tasks);
        let mut first_error: Option<WsError> = None;
        for (i, done) in report.results.into_iter().enumerate() {
            let p = destinations[i];
            let PoolDone::Delivery {
                ws,
                store,
                facts,
                gossip_inbox,
                outcome,
                error,
            } = done
            else {
                unreachable!("delivery batches return delivery results");
            };
            self.workspaces.insert(p, ws);
            self.stores.insert(p, store);
            self.cert_facts.insert(p, facts);
            if let (Some(g), Some(ib)) = (self.gossip.as_mut(), gossip_inbox) {
                g.inbox.insert(p, ib);
            }
            self.merge_delivery(p, outcome);
            if first_error.is_none() {
                first_error = error;
            }
        }
        match first_error {
            Some(e) => Err(e.into()),
            None => {
                self.serve_pulls(&pulls);
                Ok(delivered)
            }
        }
    }

    /// Answers gossip pull requests, sequentially in delivery order
    /// (duplicates within the step collapse): for each distinct
    /// `(responder, requester, issuer)`, the responder relays every
    /// signed revocation object by `issuer` it holds as `revgossip`
    /// frames. Served after the destination shards ran, so a responder
    /// that learned new objects this very step already relays them.
    fn serve_pulls(&mut self, pulls: &[(Principal, Symbol, Symbol)]) {
        let mut seen: HashSet<(Principal, Symbol, Symbol)> = HashSet::new();
        for &(responder, requester, issuer) in pulls {
            self.stats.messages_accepted += 1;
            if !seen.insert((responder, requester, issuer)) {
                continue;
            }
            let objects = self
                .stores
                .get(&responder)
                .expect("registered")
                .revocations_by(issuer);
            let from_node = self.node_of(responder);
            let to_node = self.node_of(requester);
            for object in objects {
                let packet = WirePacket::RevGossip(RevokeMessage {
                    from: object.issuer,
                    to: requester,
                    digest: *object.target.as_bytes(),
                    auth: object.signature,
                });
                self.stats.gossip_served += 1;
                self.send_packet(from_node, to_node, lbtrust_net::encode_packet(&packet));
            }
        }
    }

    /// Folds one delivery outcome into the system counters and the
    /// destination's snapshot-publication bookkeeping.
    fn merge_delivery(&mut self, at: Principal, outcome: DeliveryOutcome) {
        self.stats.messages_accepted += outcome.accepted;
        self.stats.messages_rejected += outcome.rejected;
        self.stats.revocations += outcome.revocations;
        self.stats.retractions += outcome.retractions;
        self.stats.dred_repairs += outcome.dred_repairs;
        self.stats.retraction_rebuilds += outcome.retraction_rebuilds;
        if outcome.dred_repairs > 0 || !outcome.poisoned.is_empty() {
            let pub_state = self.authz_pub.entry(at).or_default();
            // `dred_repairs` counts exactly the incremental retraction
            // repairs, each of which bumped the workspace epoch once.
            pub_state.retraction_bumps += outcome.dred_repairs as u64;
            pub_state.poisoned.extend(outcome.poisoned);
        }
    }

    /// Syncs every dirty store once — the group-commit sweep. Shards
    /// sync their stores in parallel so independent fsyncs overlap.
    /// With auto-compaction armed, the same sweep compacts any store
    /// whose dead-record bytes reached the threshold, still on its
    /// shard worker — maintenance piggybacks on the commit point
    /// instead of adding a stop-the-world phase.
    fn sync_stores(&mut self, order: &[Principal]) -> Result<(), SysError> {
        let threshold = self.auto_compact_dead_bytes;
        let step = self.stats.steps;
        // Skip quarantined stores (read-only until their fault heals)
        // and degraded stores whose step-based backoff has not elapsed
        // — extending the opportunistic-skip pattern group commit
        // already applies to oversized checkpoints.
        let dirty: Vec<Principal> = order
            .iter()
            .copied()
            .filter(|p| {
                self.stores.get(p).is_some_and(|s| s.is_dirty())
                    && match self.health.get(p).map(|h| (h.health, h.retry_at_step)) {
                        Some((StoreHealth::Quarantined, _)) => false,
                        Some((StoreHealth::Degraded, retry_at)) => retry_at <= step,
                        _ => true,
                    }
            })
            .collect();
        if dirty.is_empty() {
            return Ok(());
        }
        let workers = clamp_shards(self.shards, dirty.len());
        if workers <= 1 || self.pool.is_none() {
            for p in &dirty {
                // Invariant: `dirty` is filtered against `stores`
                // membership above and nothing removes entries.
                let store = self.stores.get_mut(p).expect("registered");
                match group_commit_store(store, threshold) {
                    Ok(()) => self.note_store_ok(*p),
                    // Transient I/O degrades the store with deferred
                    // retry instead of failing the whole sweep.
                    Err(e) => self.note_store_failure(*p, e)?,
                }
            }
            return Ok(());
        }
        let pool = self.pool.as_ref().expect("pool exists when shards > 1");
        let tasks: Vec<PoolTask> = dirty
            .iter()
            .map(|p| PoolTask::Store {
                store: self.stores.remove(p).expect("registered"),
                op: StoreOp::GroupCommit {
                    auto_compact: threshold,
                },
            })
            .collect();
        let queues = split_contiguous(tasks, pool.workers());
        let report = pool.run_batch(queues, self.stealing);
        self.obs.record_pool_batch(report.steals, report.tasks);
        let mut failures: Vec<(Principal, CertStoreError)> = Vec::new();
        for (i, done) in report.results.into_iter().enumerate() {
            let PoolDone::Store { store, result } = done else {
                unreachable!("store batches return store results");
            };
            self.stores.insert(dirty[i], store);
            match result {
                Ok(_) => self.note_store_ok(dirty[i]),
                Err(e) => failures.push((dirty[i], e)),
            }
        }
        // Health folds happen after every store is back in the map, in
        // registration order, so serial and sharded runs record the
        // identical degradation sequence.
        for (p, e) in failures {
            self.note_store_failure(p, e)?;
        }
        Ok(())
    }

    /// Phase 5 of [`System::run_to_quiescence`]: probe each
    /// quarantined store whose backoff elapsed and re-admit it when
    /// its fault has healed. Re-admission flushes whatever the store
    /// holds, applies clock ticks deferred while quarantined, and
    /// journals a `store.healed` event; the next gossip rounds repair
    /// any revocations the store missed (PR 5 anti-entropy). Returns
    /// the number of stores re-admitted this step — a non-zero count
    /// keeps the quiescence loop running so that repair actually
    /// happens.
    fn probe_quarantined(&mut self, order: &[Principal]) -> Result<usize, SysError> {
        let step = self.stats.steps;
        let policy = self.retry_policy;
        let mut healed = 0usize;
        for &p in order {
            let due = self
                .health
                .get(&p)
                .is_some_and(|h| h.health == StoreHealth::Quarantined && h.retry_at_step <= step);
            if !due {
                continue;
            }
            // An armed persistent fault cannot pass a probe; push the
            // next one out (capped backoff) without touching the store.
            if self
                .fault_handles
                .get(&p)
                .is_some_and(FaultHandle::is_persistent)
            {
                let h = self.health.entry(p).or_default();
                h.attempts = h.attempts.saturating_add(1);
                h.retry_at_step = step + policy.backoff_steps(h.attempts);
                continue;
            }
            // Probe: flush whatever the store buffered. On success the
            // store is writable again; on transient failure the probe
            // backs off and tries later.
            // Invariant: quarantine never removes a registered store.
            let store = self.stores.get_mut(&p).expect("registered");
            match store.sync() {
                Ok(()) => {
                    let (attempts, pending) = {
                        let h = self.health.entry(p).or_default();
                        let attempts = h.attempts;
                        h.health = StoreHealth::Healthy;
                        h.attempts = 0;
                        (attempts, std::mem::take(&mut h.pending_ticks))
                    };
                    self.journal_health("store.healed", p, attempts, "probe succeeded");
                    if pending > 0 {
                        // Apply the clock ticks the store missed. A
                        // fresh failure here re-quarantines and puts
                        // the balance back.
                        match self.retry_store_op(p, |store| store.advance_clock(pending))? {
                            Some(events) => self.retract_cert_facts(p, &events),
                            None => {
                                self.health.entry(p).or_default().pending_ticks += pending;
                                continue;
                            }
                        }
                    }
                    healed += 1;
                }
                Err(e) if Self::is_storage_io(&e) => {
                    self.obs.count_retry();
                    let h = self.health.entry(p).or_default();
                    h.attempts = h.attempts.saturating_add(1);
                    h.last_error = e.to_string();
                    h.retry_at_step = step + policy.backoff_steps(h.attempts);
                }
                Err(e) => return Err(SysError::Cert(e)),
            }
        }
        Ok(healed)
    }

    /// The node hosting `p`, defaulting to a node named after the
    /// principal (matching how unplaced principals behaved before
    /// placement became data).
    fn node_of(&self, p: Principal) -> NodeId {
        self.placement
            .get(&p)
            .copied()
            .unwrap_or_else(|| NodeId::new(p.as_str()))
    }
}

/// One destination's work for a delivery shard: exclusive references
/// to everything the destination owns (workspace, certificate store,
/// the fact index for its imported certificates) plus the routed
/// packets.
struct DeliveryTask<'a> {
    ws: &'a mut Workspace,
    store: &'a mut CertStore,
    facts: &'a mut CertFactIndex,
    /// This destination's slice of the gossip advertisement inbox
    /// (`None` when gossip is off; summaries are only routed when it
    /// is on).
    gossip_inbox: Option<&'a mut HashMap<(Symbol, Symbol), String>>,
    /// Wire revocations routed here, each with its application mode
    /// (`true` = tolerant gossip absorption).
    revocations: Vec<(Revocation, bool)>,
    /// Gossip advertisements routed here: `(advertiser, signer,
    /// fingerprint)` in delivery order.
    summaries: Vec<(Symbol, Symbol, String)>,
    tuples: Vec<Tuple>,
}

/// Counters one delivery shard hands back for the sequential merge
/// into [`SystemStats`].
#[derive(Default)]
struct DeliveryOutcome {
    accepted: usize,
    rejected: usize,
    revocations: usize,
    retractions: usize,
    dred_repairs: usize,
    retraction_rebuilds: usize,
    /// Digests of certificates that died at this destination during
    /// the delivery — fed to the decision cache's poisoned-entry
    /// invalidation at the next snapshot publish.
    poisoned: Vec<CertDigest>,
}

/// Applies one destination's routed packets: revocations first (store
/// transition + DRed retraction of the dead certificates' facts), then
/// the export batch (assert + one evaluation, with per-message retry
/// after a constraint rollback). Runs on a shard worker; everything it
/// touches is owned exclusively by the task except the shared
/// verification cache and key directory behind `verifier`. The outcome
/// counters are returned even when a hard error cuts the work short,
/// so statistics stay faithful to the mutations actually applied.
fn process_destination(
    task: DeliveryTask<'_>,
    verifier: &KeyVerifier,
    eager: bool,
    export: Symbol,
) -> (DeliveryOutcome, Option<WsError>) {
    let DeliveryTask {
        ws,
        store,
        facts,
        gossip_inbox,
        revocations,
        summaries,
        tuples,
    } = task;
    let mut out = DeliveryOutcome::default();
    for (revocation, absorb) in revocations {
        // Bad signatures (and, under Eager, a failed commit) count as
        // rejections, exactly like tampered exports. Gossip-relayed
        // objects absorb tolerantly — an issuer-mismatch object is
        // remembered as inert instead of rejected, so anti-entropy
        // converges on the object set.
        let applied = if absorb {
            store.absorb_revocation(&revocation, verifier)
        } else {
            store.revoke_with_outcome(&revocation, verifier)
        }
        .and_then(|outcome| {
            if eager {
                store.sync().map(|()| outcome)
            } else {
                Ok(outcome)
            }
        });
        match applied {
            Ok(outcome) => {
                out.accepted += 1;
                // A duplicated packet (or a re-pulled object) applies
                // nothing: no counters move, no retraction re-fires.
                // An inert foreign absorption is stored but revoked
                // nothing, so it does not count as a revocation either.
                if !outcome.applied || !outcome.authoritative {
                    continue;
                }
                out.revocations += 1;
                let mut batch: Vec<(Symbol, Tuple)> = Vec::new();
                for event in &outcome.events {
                    out.poisoned.push(event.digest);
                    if let Some(fs) = facts.remove(&event.digest) {
                        batch.extend(fs);
                    }
                }
                if !batch.is_empty() {
                    out.retractions += batch.len();
                    match ws.retract_facts(&batch) {
                        RetractOutcome::Incremental(_) => out.dred_repairs += 1,
                        RetractOutcome::Deferred => out.retraction_rebuilds += 1,
                        RetractOutcome::Noop => {}
                    }
                }
            }
            Err(_) => out.rejected += 1,
        }
    }
    if !summaries.is_empty() {
        let me = ws.me();
        let inbox = gossip_inbox.expect("summaries are only routed while gossip is on");
        for (from, issuer, fingerprint) in summaries {
            let key = (from, issuer);
            let prev = inbox.get(&key).cloned();
            out.accepted += 1;
            if prev.as_deref() == Some(fingerprint.as_str()) {
                continue; // duplicate or unchanged advertisement
            }
            // A newer advertisement supersedes the remembered one: the
            // stale `gsays` fact is retracted (its derived pulls repair
            // through DRed) before the fresh one lands.
            if let Some(prev) = prev {
                let stale = vec![advert_fact(from, me, issuer, &prev)];
                ws.retract_facts(&stale);
            }
            let fresh = vec![advert_fact(from, me, issuer, &fingerprint)];
            ws.assert_facts(&fresh);
            inbox.insert(key, fingerprint);
        }
    }
    if !tuples.is_empty() {
        let n = tuples.len();
        for tuple in &tuples {
            ws.assert_fact(export, tuple.clone());
        }
        match ws.evaluate() {
            Ok(_) => out.accepted += n,
            Err(WsError::Constraint(_)) => {
                // Batch rolled back; isolate the poisoned message(s).
                for tuple in tuples {
                    ws.assert_fact(export, tuple);
                    match ws.evaluate() {
                        Ok(_) => out.accepted += 1,
                        Err(WsError::Constraint(_)) => out.rejected += 1,
                        Err(e) => return (out, Some(e)),
                    }
                }
            }
            Err(e) => return (out, Some(e)),
        }
    }
    (out, None)
}

// ---- worker-pool task plumbing ------------------------------------------

/// The deterministic per-principal cost estimate: rules fired plus
/// facts derived in the last evaluation, floored at 1 so an idle
/// principal still weighs something. Identical across runs, so the
/// LPT partition built from it is reproducible.
fn deterministic_cost(stats: &EvalStats) -> u64 {
    (stats.rule_evals as u64)
        .saturating_add(stats.derived as u64)
        .max(1)
}

/// The opt-in wall-time cost: elapsed nanoseconds, floored at 1.
fn wall_cost(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos())
        .unwrap_or(u64::MAX)
        .max(1)
}

/// One store's group-commit work: sync, then — with auto-compaction
/// armed — compact if the dead-byte threshold is reached. Shared by
/// the serial sweep and the pool workers.
fn group_commit_store(
    store: &mut CertStore,
    auto_compact: Option<u64>,
) -> Result<(), CertStoreError> {
    store.sync()?;
    if let Some(dead) = auto_compact {
        if store.dead_bytes() >= dead {
            match store.compact() {
                Ok(_) => {}
                // A store whose live state outgrew the checkpoint
                // frame budget cannot be compacted — but it is
                // healthy, and the opportunistic trigger must not
                // wedge every future group commit over it. An explicit
                // `System::compact()` still surfaces the condition.
                Err(CertStoreError::Storage(
                    lbtrust_certstore::StorageError::CheckpointTooLarge { .. },
                )) => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(())
}

/// Which maintenance a [`PoolTask::Store`] performs.
enum StoreOp {
    /// The group-commit sweep: sync, plus opportunistic compaction.
    GroupCommit { auto_compact: Option<u64> },
    /// Explicit `compact()`/`checkpoint()`.
    Maintain { prune: bool },
}

/// One unit of pool work: owned state moved out of the `System`'s maps
/// for the duration of a batch. Ownership (instead of the old scoped
/// `&mut` slices) is what lets the pool threads outlive any one phase
/// without unsafe lifetime erasure.
// A task moves exactly twice (into its queue, out at claim); a shallow
// struct copy is cheaper than boxing each Workspace/CertStore per step.
#[allow(clippy::large_enum_variant)]
enum PoolTask {
    /// Evaluate one workspace to its local fixpoint.
    Fixpoint {
        ws: Workspace,
        /// Measure wall time for [`CostModel::WallTime`].
        time: bool,
    },
    /// Apply one destination's routed packets (boxed: the job is the
    /// fattest variant by far).
    Delivery(Box<DeliveryJob>),
    /// Sync/compact/checkpoint one certificate store.
    Store { store: CertStore, op: StoreOp },
}

/// The matching results, each handing the moved state back for the
/// sequential registration-order merge.
// Same trade as [`PoolTask`]: two moves per result, no per-task boxing.
#[allow(clippy::large_enum_variant)]
enum PoolDone {
    Fixpoint {
        ws: Workspace,
        result: Result<EvalStats, WsError>,
        /// Wall nanoseconds of the evaluation (0 unless requested).
        nanos: u64,
    },
    Delivery {
        ws: Workspace,
        store: CertStore,
        facts: CertFactIndex,
        gossip_inbox: Option<HashMap<(Symbol, Symbol), String>>,
        outcome: DeliveryOutcome,
        error: Option<WsError>,
    },
    Store {
        store: CertStore,
        /// Whether a maintenance pass actually installed (always
        /// `false` for group commits).
        result: Result<bool, CertStoreError>,
    },
}

/// The owned form of [`DeliveryTask`]: everything one destination
/// needs, including a clone of the (cheap, `Arc`-backed) verifier and
/// the per-batch flags, so the task is `'static` and self-contained.
struct DeliveryJob {
    ws: Workspace,
    store: CertStore,
    facts: CertFactIndex,
    gossip_inbox: Option<HashMap<(Symbol, Symbol), String>>,
    revocations: Vec<(Revocation, bool)>,
    summaries: Vec<(Symbol, Symbol, String)>,
    tuples: Vec<Tuple>,
    verifier: KeyVerifier,
    eager: bool,
    export: Symbol,
}

impl DeliveryJob {
    fn run(&mut self) -> (DeliveryOutcome, Option<WsError>) {
        let verifier = self.verifier.clone();
        let task = DeliveryTask {
            ws: &mut self.ws,
            store: &mut self.store,
            facts: &mut self.facts,
            gossip_inbox: self.gossip_inbox.as_mut(),
            revocations: std::mem::take(&mut self.revocations),
            summaries: std::mem::take(&mut self.summaries),
            tuples: std::mem::take(&mut self.tuples),
        };
        process_destination(task, &verifier, self.eager, self.export)
    }
}

/// The pool workers' dispatch function — the single `fn` every
/// [`WorkerPool`] thread runs on each task it claims.
fn run_pool_task(task: PoolTask) -> PoolDone {
    match task {
        PoolTask::Fixpoint { mut ws, time } => {
            let started = time.then(Instant::now);
            let result = ws.evaluate();
            let nanos = started.map_or(0, wall_cost);
            PoolDone::Fixpoint { ws, result, nanos }
        }
        PoolTask::Delivery(mut job) => {
            let (outcome, error) = job.run();
            let DeliveryJob {
                ws,
                store,
                facts,
                gossip_inbox,
                ..
            } = *job;
            PoolDone::Delivery {
                ws,
                store,
                facts,
                gossip_inbox,
                outcome,
                error,
            }
        }
        PoolTask::Store { mut store, op } => {
            let result = match op {
                StoreOp::GroupCommit { auto_compact } => {
                    group_commit_store(&mut store, auto_compact).map(|()| false)
                }
                StoreOp::Maintain { prune } => if prune {
                    store.compact()
                } else {
                    store.checkpoint()
                }
                .map(|report| report.performed),
            };
            PoolDone::Store { store, result }
        }
    }
}

/// Name-based ordering key for one gossip message, so the send order
/// (and thus the seeded network's behaviour) is stable across runs and
/// independent of symbol-interning order. Summaries sort before pulls
/// to the same peer: a peer should hear this node's state before its
/// request.
fn gossip_send_key(send: &GossipSend) -> (&'static str, u8, &'static str, &str) {
    match send {
        GossipSend::Summary {
            to,
            issuer,
            fingerprint,
        } => (to.as_str(), 0, issuer.as_str(), fingerprint.as_str()),
        GossipSend::Pull { to, issuer } => (to.as_str(), 1, issuer.as_str(), ""),
    }
}

/// The shipped-dedup key: two independently seeded structural hashes
/// of an export tuple. 16 bytes per remembered tuple instead of a deep
/// clone of its symbols, quoted rule and signature bytes, and computed
/// by the same allocation-free structural walk `HashSet<Tuple>` used —
/// no rendering, no cryptographic digest on the drain hot loop. 128
/// bits of combined fingerprint makes an accidental collision (which
/// would silently drop one export message) about as likely as a SHA
/// collision in practice.
type TupleFingerprint = (u64, u64);

/// Fingerprints an export tuple for the shipped-dedup sets. The
/// structural `Hash` impls distinguish value variants, so `Sym("42")`
/// and `Int(42)` — which render identically — cannot collide the way
/// text-keyed schemes would.
fn tuple_fingerprint(tuple: &[Value]) -> TupleFingerprint {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut a = DefaultHasher::new();
    tuple.hash(&mut a);
    let mut b = DefaultHasher::new();
    0x9e37_79b9_7f4a_7c15u64.hash(&mut b);
    tuple.hash(&mut b);
    (a.finish(), b.finish())
}

impl Default for System {
    fn default() -> Self {
        System::new()
    }
}

/// The workspace base facts one imported certificate introduces at
/// principal `to`: the authenticated-import tuple (`export[to](issuer,
/// R, S)`, re-verified by the declarative `exp2`/`exp3` pipeline) plus
/// `says(issuer, to, R)` directly for workspaces without the auth
/// prelude. Shared by live import and log-replay reconciliation so both
/// assert byte-identical facts.
fn cert_workspace_facts(to: Principal, cert: &LinkedCert) -> Vec<(Symbol, Tuple)> {
    let export_tuple = vec![
        Value::Sym(to),
        Value::Sym(cert.issuer),
        Value::Quote(cert.rule.clone()),
        Value::bytes(&cert.rule_sig),
    ];
    let says_tuple = vec![
        Value::Sym(cert.issuer),
        Value::Sym(to),
        Value::Quote(cert.rule.clone()),
    ];
    vec![
        (Symbol::intern("export"), export_tuple),
        (Symbol::intern("says"), says_tuple),
    ]
}

/// Decodes an `export[to](from, R, S)` tuple into a wire message.
fn export_tuple_to_message(tuple: &[Value]) -> Option<WireMessage> {
    match tuple {
        [Value::Sym(to), Value::Sym(from), Value::Quote(rule), Value::Bytes(auth)] => {
            Some(WireMessage {
                from: *from,
                to: *to,
                rule: rule.clone(),
                auth: auth.to_vec(),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// Two principals, RSA auth: alice says a fact to bob; bob's policy
    /// uses it (the bex1' flow of §5.1).
    #[test]
    fn rsa_says_end_to_end() {
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();

        // Alice: say good(carol) to bob whenever vouched(carol).
        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| good(X). |]) <- vouched(X).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("vouched(carol).")
            .unwrap();

        // Bob: grant read access to anyone alice says is good.
        sys.workspace_mut(bob)
            .unwrap()
            .load(
                "policy",
                "access(P,file1,read) <- says(alice,me,[| good(P) |]).",
            )
            .unwrap();

        sys.run_to_quiescence(16).unwrap();
        assert!(sys
            .workspace(bob)
            .unwrap()
            .holds_src("access(carol,file1,read)")
            .unwrap());
        assert_eq!(sys.stats().messages_sent, 1);
        assert_eq!(sys.stats().messages_accepted, 1);
        assert_eq!(sys.stats().messages_rejected, 0);
    }

    /// The static-analysis preflight refuses a deny-level program
    /// before the workspace sees it, with the finding kind and source
    /// position in the structured error.
    #[test]
    fn load_program_refuses_deny_level_findings() {
        let mut sys = System::new().with_rsa_bits(512);
        let bob = sys.add_principal("bob", "n1").unwrap();
        // Registration pre-loads the `says` scaffolding; the refusal
        // must leave exactly that.
        let baseline = sys.workspace(bob).unwrap().active_rules().len();
        // A grant head fed by an unconstrained `says` sender — the
        // canonical UnsignedAuthority shape, Deny by default.
        let err = sys
            .load_program(
                bob,
                "policy",
                "access(P,file1,read) <- says(W,me,[| good(P). |]).",
            )
            .unwrap_err();
        match &err {
            SysError::Lint(e) => {
                assert_eq!(e.tag, "policy");
                assert_eq!(e.denials.len(), 1);
                assert_eq!(
                    e.denials[0].kind,
                    lbtrust_analysis::DiagKind::UnsignedAuthority
                );
                assert_eq!(e.denials[0].span, lbtrust_datalog::Span::new(1, 1));
            }
            other => panic!("expected Lint, got {other}"),
        }
        assert!(std::error::Error::source(&err).is_some());
        // Nothing was installed.
        assert_eq!(sys.workspace(bob).unwrap().active_rules().len(), baseline);

        // Guarding the sender clears the lint; the analysis comes back
        // for the caller to inspect.
        let analysis = sys
            .load_program(
                bob,
                "policy",
                "access(P,file1,read) <- says(W,me,[| good(P). |]), trustedca(W).",
            )
            .unwrap();
        assert!(!analysis.has_denials());
        assert_eq!(
            sys.workspace(bob).unwrap().active_rules().len(),
            baseline + 1
        );
    }

    /// Demoting the lint admits the same program (trusted-by-
    /// construction escape hatch), without touching other levels.
    #[test]
    fn lint_levels_are_configurable_per_system() {
        let mut sys = System::new().with_rsa_bits(512).with_lint_level(
            lbtrust_analysis::DiagKind::UnsignedAuthority,
            LintLevel::Warn,
        );
        let bob = sys.add_principal("bob", "n1").unwrap();
        let baseline = sys.workspace(bob).unwrap().active_rules().len();
        let analysis = sys
            .load_program(
                bob,
                "policy",
                "access(P,file1,read) <- says(W,me,[| good(P). |]).",
            )
            .unwrap();
        assert!(analysis
            .warnings()
            .any(|d| d.kind == lbtrust_analysis::DiagKind::UnsignedAuthority));
        assert_eq!(
            sys.workspace(bob).unwrap().active_rules().len(),
            baseline + 1
        );
    }

    #[test]
    fn hmac_scheme_works_after_two_rule_swap() {
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        sys.establish_shared_secret(alice, bob).unwrap();
        sys.set_auth_scheme(alice, AuthScheme::HmacSha1).unwrap();
        sys.set_auth_scheme(bob, AuthScheme::HmacSha1).unwrap();

        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| good(X). |]) <- vouched(X).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("vouched(dave).")
            .unwrap();
        sys.workspace_mut(bob)
            .unwrap()
            .load(
                "policy",
                "access(P,file1,read) <- says(alice,me,[| good(P) |]).",
            )
            .unwrap();

        sys.run_to_quiescence(16).unwrap();
        assert!(sys
            .workspace(bob)
            .unwrap()
            .holds_src("access(dave,file1,read)")
            .unwrap());
    }

    #[test]
    fn plaintext_scheme() {
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n1").unwrap(); // co-located
        sys.set_auth_scheme(alice, AuthScheme::Plaintext).unwrap();
        sys.set_auth_scheme(bob, AuthScheme::Plaintext).unwrap();

        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| note(N). |]) <- memo(N).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("memo(hello).")
            .unwrap();
        sys.workspace_mut(bob)
            .unwrap()
            .load("policy", "received(N) <- says(alice,me,[| note(N) |]).")
            .unwrap();
        sys.run_to_quiescence(16).unwrap();
        assert!(sys
            .workspace(bob)
            .unwrap()
            .holds(sym("received"), &[Value::sym("hello")]));
    }

    #[test]
    fn loc_facts_drive_placement() {
        // ld1/ld2 (§5.2): asserting loc(P,N) relocates P's partition.
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        assert_eq!(sys.location(bob).unwrap().name(), "n2");
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("loc(bob, rack42).")
            .unwrap();
        sys.run_to_quiescence(8).unwrap();
        assert_eq!(sys.location(bob).unwrap().name(), "rack42");
    }

    #[test]
    fn sharded_engine_reaches_same_state_as_serial() {
        // The same three-principal says/access workload on the serial
        // engine and on more shards than principals: identical derived
        // facts and identical message statistics.
        fn build(shards: usize) -> System {
            let mut sys = System::new().with_rsa_bits(512).with_shards(shards);
            let alice = sys.add_principal("alice", "n1").unwrap();
            let _bob = sys.add_principal("bob", "n2").unwrap();
            let _carol = sys.add_principal("carol", "n3").unwrap();
            for target in ["bob", "carol"] {
                sys.workspace_mut(alice)
                    .unwrap()
                    .load(
                        "policy",
                        &format!("says(me,{target},[| good(X). |]) <- vouched(X)."),
                    )
                    .unwrap();
            }
            sys.workspace_mut(alice)
                .unwrap()
                .assert_src("vouched(dave). vouched(erin).")
                .unwrap();
            for receiver in ["bob", "carol"] {
                let p = Symbol::intern(receiver);
                sys.workspace_mut(p)
                    .unwrap()
                    .load(
                        "policy",
                        "access(P,file1,read) <- says(alice,me,[| good(P) |]).",
                    )
                    .unwrap();
            }
            sys.run_to_quiescence(16).unwrap();
            sys
        }
        let serial = build(1);
        let parallel = build(8);
        for receiver in ["bob", "carol"] {
            let p = Symbol::intern(receiver);
            for person in ["dave", "erin"] {
                assert!(parallel
                    .workspace(p)
                    .unwrap()
                    .holds_src(&format!("access({person},file1,read)"))
                    .unwrap());
            }
            assert_eq!(
                serial.workspace(p).unwrap().tuples(sym("access")).len(),
                parallel.workspace(p).unwrap().tuples(sym("access")).len(),
            );
        }
        assert_eq!(serial.stats().messages_sent, parallel.stats().messages_sent);
        assert_eq!(
            serial.stats().messages_accepted,
            parallel.stats().messages_accepted
        );
        assert_eq!(serial.stats().steps, parallel.stats().steps);
    }

    #[test]
    fn batched_policy_defers_syncs_until_group_commit() {
        let dir = std::env::temp_dir().join(format!(
            "lbtrust-batched-unit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sys = System::open_persistent(&dir)
            .unwrap()
            .with_rsa_bits(512)
            .with_sync_policy(SyncPolicy::Batched);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        let cert = sys
            .issue_certificate(alice, "good(carol).", &[], None)
            .unwrap();
        let digest = cert.digest();
        // Imports commit once per bundle even under Batched.
        sys.import_certificates(bob, vec![cert]).unwrap();
        assert!(!sys.cert_store(bob).unwrap().is_dirty());
        // A clock advance defers: the store stays dirty until a group
        // commit (quiescence step or explicit flush).
        sys.advance_time(1).unwrap();
        assert!(sys.cert_store(bob).unwrap().is_dirty());
        let before = sys.fsyncs();
        sys.flush().unwrap();
        assert!(!sys.cert_store(bob).unwrap().is_dirty());
        assert!(sys.fsyncs() > before);
        // A revocation broadcast settles durably through the step's
        // group commit.
        sys.revoke_certificate(alice, digest).unwrap();
        sys.run_to_quiescence(16).unwrap();
        assert!(!sys.cert_store(alice).unwrap().is_dirty());
        assert!(!sys.cert_store(bob).unwrap().is_dirty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_revocation_broadcast_retracts_everywhere() {
        let mut sys = System::new().with_rsa_bits(512).with_shards(4);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let receivers: Vec<Principal> = (0..5)
            .map(|i| {
                sys.add_principal(&format!("r{i}"), &format!("m{i}"))
                    .unwrap()
            })
            .collect();
        let cert = sys
            .issue_certificate(alice, "good(carol).", &[], None)
            .unwrap();
        let digest = cert.digest();
        for &r in &receivers {
            sys.workspace_mut(r)
                .unwrap()
                .load(
                    "policy",
                    "access(P,f,read) <- says(alice,me,[| good(P) |]).",
                )
                .unwrap();
            sys.import_certificates(r, vec![cert.clone()]).unwrap();
        }
        sys.run_to_quiescence(16).unwrap();
        for &r in &receivers {
            assert!(sys
                .workspace(r)
                .unwrap()
                .holds_src("access(carol,f,read)")
                .unwrap());
        }
        sys.revoke_certificate(alice, digest).unwrap();
        sys.run_to_quiescence(16).unwrap();
        for &r in &receivers {
            assert!(
                !sys.workspace(r)
                    .unwrap()
                    .holds_src("access(carol,f,read)")
                    .unwrap(),
                "parallel delivery shards must retract the revoked facts"
            );
        }
        assert_eq!(sys.stats().revocations, 1 + receivers.len());
    }

    #[test]
    fn scheme_mismatch_rejects() {
        // Alice signs with HMAC but bob expects RSA: bob's exp3 cannot
        // verify, so the message is rejected and bob learns nothing.
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        sys.establish_shared_secret(alice, bob).unwrap();
        sys.set_auth_scheme(alice, AuthScheme::HmacSha1).unwrap();
        // bob stays on RSA.

        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| good(X). |]) <- vouched(X).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("vouched(eve).")
            .unwrap();
        sys.workspace_mut(bob)
            .unwrap()
            .load(
                "policy",
                "access(P,f,read) <- says(alice,me,[| good(P) |]).",
            )
            .unwrap();
        sys.run_to_quiescence(16).unwrap();
        assert_eq!(sys.stats().messages_rejected, 1);
        assert!(!sys
            .workspace(bob)
            .unwrap()
            .holds_src("access(eve,f,read)")
            .unwrap());
    }

    #[test]
    fn dropping_a_sharded_system_joins_its_pool_threads() {
        let mut sys = System::new().with_rsa_bits(512).with_shards(4);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let _bob = sys.add_principal("bob", "n2").unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .load("policy", "says(me,bob,[| good(X). |]) <- vouched(X).")
            .unwrap();
        sys.workspace_mut(alice)
            .unwrap()
            .assert_src("vouched(carol).")
            .unwrap();
        sys.run_to_quiescence(16).unwrap();
        let alive = sys.pool_liveness().expect("sharded system owns a pool");
        // 4 worker clones + the pool's own + this one.
        assert_eq!(std::sync::Arc::strong_count(&alive), 6);
        drop(sys);
        // Drop joined every worker, so every thread-held clone is gone:
        // no leaked pool threads.
        assert_eq!(std::sync::Arc::strong_count(&alive), 1);
    }

    #[test]
    fn resizing_shards_replaces_and_joins_the_old_pool() {
        let mut sys = System::new().with_rsa_bits(512).with_shards(3);
        let old = sys.pool_liveness().expect("pool exists at shards=3");
        // 3 worker clones + the pool's own + this one.
        assert_eq!(std::sync::Arc::strong_count(&old), 5);
        sys.set_shards(1); // back to the inline serial engine
        assert_eq!(std::sync::Arc::strong_count(&old), 1, "old workers joined");
        assert!(sys.pool_liveness().is_none(), "shards=1 keeps no pool");
    }
}
