//! # lbtrust — Declarative Reconfigurable Trust Management
//!
//! A from-scratch reproduction of *LBTrust* (Marczak, Zook, Zhou, Aref,
//! Loo — CIDR 2009): a unified declarative system in which security
//! constructs — authentication (`says`), confidentiality, integrity,
//! delegation (speaks-for, restricted depth/width, thresholds) — are
//! expressed, customized and composed in the same Datalog dialect as the
//! policies themselves.
//!
//! ## Layering
//!
//! * [`workspace`] — the LogicBlox-style workspace (§3.1): active rules,
//!   staged meta-evaluation (§3.3 reflection + code generation), schema
//!   and meta-constraint enforcement with transactional rollback (§3.2).
//! * [`principal`], [`auth`] — principals, key material, and the
//!   **reconfigurable** authentication schemes of §4.1: Plaintext,
//!   HMAC-SHA1 and RSA, each a two-rule prelude (`exp1`/`exp3`).
//! * [`says`], [`delegation`], [`authz`], [`pull`] — the security
//!   construct preludes of §4 and §5.1, as LBTrust source.
//! * [`system`] — the multi-principal runtime (§3.5): placement (`loc`),
//!   export/import over a deterministic simulated network, and the
//!   distributed fixpoint.
//!
//! ## Quickstart
//!
//! ```
//! use lbtrust::{AuthScheme, System};
//!
//! let mut sys = System::new().with_rsa_bits(512); // 512 for doc-test speed
//! let alice = sys.add_principal("alice", "node1").unwrap();
//! let bob = sys.add_principal("bob", "node2").unwrap();
//!
//! // Alice tells bob who is good; bob's policy grants access on alice's
//! // word (Binder's b2, §2.2).
//! sys.workspace_mut(alice).unwrap()
//!     .load("policy", "says(me,bob,[| good(X). |]) <- vouched(X).").unwrap();
//! sys.workspace_mut(alice).unwrap().assert_src("vouched(carol).").unwrap();
//! sys.workspace_mut(bob).unwrap()
//!     .load("policy", "access(P,file1,read) <- says(alice,me,[| good(P) |]).").unwrap();
//!
//! sys.run_to_quiescence(16).unwrap();
//! assert!(sys.workspace(bob).unwrap().holds_src("access(carol,file1,read)").unwrap());
//!
//! // Reconfigure: swap RSA for HMAC — two rules change, no policy does.
//! sys.establish_shared_secret(alice, bob).unwrap();
//! sys.set_auth_scheme(alice, AuthScheme::HmacSha1).unwrap();
//! sys.set_auth_scheme(bob, AuthScheme::HmacSha1).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod authz;
pub mod authz_read;
pub mod delegation;
pub mod gossip;
pub mod obs;
mod pool;
pub mod principal;
pub mod pull;
pub mod says;
pub mod system;
pub mod workspace;

pub use auth::{AuthScheme, KeyVerifier};
pub use authz_read::{AuthzReader, AuthzSnapshot};
pub use obs::QuiescePhase;
pub use pool::{CostModel, PartitionStrategy};
pub use principal::{KeyDirectory, Principal, SharedKeys};
pub use system::{
    AuthzDecision, DegradedError, LintError, RetryPolicy, StoreHealth, SyncPolicy, SysError,
    System, SystemStats,
};
pub use workspace::{RetractOutcome, Workspace, WsError};

// Re-export the substrate crates so downstream users need one dependency.
pub use lbtrust_analysis as analysis;
pub use lbtrust_certstore as certstore;
pub use lbtrust_crypto as crypto;
pub use lbtrust_datalog as datalog;
pub use lbtrust_metamodel as metamodel;
pub use lbtrust_net as net;
