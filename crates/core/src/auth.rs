//! Reconfigurable authentication (§4.1 of the paper).
//!
//! The `says` concept "is configured in the same language as the policy"
//! — the only host-level support is a set of cryptographic builtin
//! predicates. This module provides those builtins (`rsasign`,
//! `rsaverify`, `hmacsign`, `hmacverify`, plus confidentiality and
//! integrity primitives from §4.1.3) and, per [`AuthScheme`], the
//! export/import rules `exp1`/`exp3` whose replacement is the paper's
//! headline reconfigurability result: switching from RSA to HMAC or
//! plaintext changes exactly these two rules while every policy that uses
//! `says` is untouched.

use crate::principal::{KeyDirectory, Principal, SharedKeys};
use lbtrust_certstore::{shared_verify_cache, SharedVerifyCache, SignatureVerifier};
use lbtrust_crypto::hmac::{hmac_sha1, verify_mac};
use lbtrust_crypto::sha1::Sha1;
use lbtrust_crypto::{crc32, stream};
use lbtrust_datalog::builtins::{BuiltinError, Builtins};
use lbtrust_datalog::{parse_rule, Symbol, Value};
use lbtrust_net::rule_bytes;
use std::fmt;
use std::sync::Arc;

/// The authentication schemes evaluated in Figure 2 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum AuthScheme {
    /// No signature: "cleartext principal headers" (§2.2).
    Plaintext,
    /// HMAC-SHA1 over a pairwise shared secret (§4.1.2).
    HmacSha1,
    /// 1024-bit RSA signatures (§4.1.1). The paper's default for Binder.
    #[default]
    Rsa,
}

impl fmt::Display for AuthScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuthScheme::Plaintext => "Plaintext",
            AuthScheme::HmacSha1 => "HMAC",
            AuthScheme::Rsa => "RSA",
        })
    }
}

impl AuthScheme {
    /// All schemes, in the order Figure 2 plots them.
    pub const ALL: [AuthScheme; 3] = [AuthScheme::Rsa, AuthScheme::HmacSha1, AuthScheme::Plaintext];

    /// The export rule (`exp1` / `exp1'`) for this scheme.
    ///
    /// Divergence note: the key-lookup literal precedes the signing
    /// builtin (the paper writes them in the opposite order) because our
    /// engine evaluates bodies left to right and the builtin needs the
    /// key handle bound. The logical meaning is identical.
    pub fn export_rule(&self) -> &'static str {
        match self {
            AuthScheme::Plaintext => "export[U2](me,R,#) <- says(me,U2,R), U2 != me.",
            AuthScheme::HmacSha1 => {
                "export[U2](me,R,S) <- says(me,U2,R), U2 != me, \
                 sharedsecret(me,U2,K), hmacsign(R,K,S)."
            }
            AuthScheme::Rsa => {
                "export[U2](me,R,S) <- says(me,U2,R), U2 != me, \
                 rsaprivkey(me,K), rsasign(R,S,K)."
            }
        }
    }

    /// The import rule `exp2` — identical for every scheme.
    pub fn import_rule(&self) -> &'static str {
        "says(U,me,R) <- export[me](U,R,S)."
    }

    /// The verification constraint (`exp3` / `exp3'`): every `says` fact
    /// addressed to me must be backed by a verifiable export.
    pub fn verify_constraint(&self) -> &'static str {
        match self {
            AuthScheme::Plaintext => "says(U,me,R), U != me -> export[me](U,R,S).",
            AuthScheme::HmacSha1 => {
                "says(U,me,R), U != me -> export[me](U,R,S), \
                 sharedsecret(me,U,K), hmacverify(R,S,K)."
            }
            AuthScheme::Rsa => {
                "says(U,me,R), U != me -> export[me](U,R,S), \
                 rsapubkey(U,K), rsaverify(R,S,K)."
            }
        }
    }

    /// The full authentication prelude for this scheme (export + import
    /// + verification).
    pub fn prelude(&self) -> String {
        format!(
            "{}\n{}\n{}\n",
            self.export_rule(),
            self.import_rule(),
            self.verify_constraint()
        )
    }
}

/// Extracts the quoted rule argument of a builtin.
fn quote_arg(name: Symbol, v: &Value) -> Result<&Arc<lbtrust_datalog::Rule>, BuiltinError> {
    v.as_quote().ok_or_else(|| BuiltinError::TypeError {
        name,
        expected: "a quoted rule".into(),
    })
}

fn bytes_arg(name: Symbol, v: &Value) -> Result<&[u8], BuiltinError> {
    match v {
        Value::Bytes(b) => Ok(b),
        _ => Err(BuiltinError::TypeError {
            name,
            expected: "bytes".into(),
        }),
    }
}

/// A [`SignatureVerifier`] over the system key directory: resolves the
/// signer's RSA public key and checks the signature. This is the "real
/// verification" the shared cache memoizes.
#[derive(Clone)]
pub struct KeyVerifier {
    keys: SharedKeys,
}

impl KeyVerifier {
    /// Builds a verifier over `keys`.
    pub fn new(keys: SharedKeys) -> KeyVerifier {
        KeyVerifier { keys }
    }
}

impl SignatureVerifier for KeyVerifier {
    fn verify(&self, signer: Symbol, message: &[u8], signature: &[u8]) -> bool {
        let guard = self.keys.read();
        guard
            .rsa(signer)
            .is_some_and(|pair| pair.public_key().verify(message, signature).is_ok())
    }
}

/// The synthetic cache identity for a pairwise HMAC secret (the
/// verification cache keys outcomes by signer symbol; a MAC has no
/// single signer, so the pair itself is the identity).
fn hmac_cache_identity(a: Principal, b: Principal) -> Symbol {
    let (lo, hi) = if a.as_str() <= b.as_str() {
        (a, b)
    } else {
        (b, a)
    };
    Symbol::intern(&format!("hmac:{lo}:{hi}"))
}

/// Registers the cryptographic builtin predicates for principal `me`,
/// resolving key handles against `keys`, with a private verification
/// cache. Prefer [`register_crypto_builtins_cached`] when a shared
/// cache exists (the [`crate::System`] always shares one).
pub fn register_crypto_builtins(builtins: &mut Builtins, me: Principal, keys: SharedKeys) {
    register_crypto_builtins_cached(builtins, me, keys, shared_verify_cache());
}

/// Registers the cryptographic builtin predicates for principal `me`,
/// resolving key handles against `keys`.
///
/// Access control at the host level: `rsasign` refuses any private-key
/// handle other than `me`'s, and the symmetric primitives refuse secrets
/// `me` is not a party to — a workspace cannot sign as somebody else no
/// matter what rules it runs.
///
/// Verification builtins (`rsaverify`, `hmacverify`) route through
/// `cache`: a signature over identical canonical bytes is checked once
/// process-wide and every later check — by any principal sharing the
/// cache, on any fixpoint round — is a memo lookup.
pub fn register_crypto_builtins_cached(
    builtins: &mut Builtins,
    me: Principal,
    keys: SharedKeys,
    cache: SharedVerifyCache,
) {
    // rsasign(R, S, K): sign rule R with private key K (mine), yielding S.
    let k = keys.clone();
    builtins.register("rsasign", 3, move |args| {
        let name = Symbol::intern("rsasign");
        let r = lbtrust_datalog::builtins::require_bound(name, args, 0)?;
        let key_handle = lbtrust_datalog::builtins::require_bound(name, args, 2)?;
        let rule = quote_arg(name, r)?;
        let Some((who, true)) = KeyDirectory::parse_rsa_handle(key_handle) else {
            return Err(BuiltinError::TypeError {
                name,
                expected: "a private-key handle".into(),
            });
        };
        if who != me {
            // Not our key: no derivation (and no oracle).
            return Ok(vec![]);
        }
        let guard = k.read();
        let Some(pair) = guard.rsa(who) else {
            return Ok(vec![]);
        };
        let sig = pair
            .private
            .sign(&rule_bytes(rule))
            .map_err(|e| BuiltinError::TypeError {
                name,
                expected: format!("signable rule ({e})"),
            })?;
        Ok(vec![vec![
            r.clone(),
            Value::bytes(&sig),
            key_handle.clone(),
        ]])
    });

    // rsaverify(R, S, K): succeeds iff S is K's signature over R.
    // Outcomes are memoized in the shared cache: checking the same
    // (rule, signature, key) again — on a later fixpoint round or in a
    // different workspace — skips the modular exponentiation.
    let k = keys.clone();
    let vc = cache.clone();
    builtins.register("rsaverify", 3, move |args| {
        let name = Symbol::intern("rsaverify");
        let r = lbtrust_datalog::builtins::require_bound(name, args, 0)?;
        let s = lbtrust_datalog::builtins::require_bound(name, args, 1)?;
        let key_handle = lbtrust_datalog::builtins::require_bound(name, args, 2)?;
        let rule = quote_arg(name, r)?;
        let sig = bytes_arg(name, s)?;
        let Some((who, _)) = KeyDirectory::parse_rsa_handle(key_handle) else {
            return Ok(vec![]);
        };
        let verifier = KeyVerifier::new(k.clone());
        let (ok, _hit) = vc.lock().unwrap_or_else(|e| e.into_inner()).check(
            &verifier,
            who,
            &rule_bytes(rule),
            sig,
        );
        if ok {
            Ok(vec![vec![r.clone(), s.clone(), key_handle.clone()]])
        } else {
            Ok(vec![])
        }
    });

    // hmacsign(R, K, S): MAC rule R under shared secret K.
    let k = keys.clone();
    builtins.register("hmacsign", 3, move |args| {
        let name = Symbol::intern("hmacsign");
        let r = lbtrust_datalog::builtins::require_bound(name, args, 0)?;
        let key_handle = lbtrust_datalog::builtins::require_bound(name, args, 1)?;
        let rule = quote_arg(name, r)?;
        let Some(secret) = resolve_secret(&k, me, key_handle) else {
            return Ok(vec![]);
        };
        let mac = hmac_sha1(&secret, &rule_bytes(rule));
        Ok(vec![vec![
            r.clone(),
            key_handle.clone(),
            Value::bytes(&mac),
        ]])
    });

    // hmacverify(R, S, K): succeeds iff S is the MAC of R under K.
    // MAC checks are cheap, but memoization still removes the repeated
    // recomputation across fixpoint rounds. The cache identity is the
    // secret's principal pair (a MAC has no single signer).
    let k = keys.clone();
    let vc = cache.clone();
    builtins.register("hmacverify", 3, move |args| {
        let name = Symbol::intern("hmacverify");
        let r = lbtrust_datalog::builtins::require_bound(name, args, 0)?;
        let s = lbtrust_datalog::builtins::require_bound(name, args, 1)?;
        let key_handle = lbtrust_datalog::builtins::require_bound(name, args, 2)?;
        let rule = quote_arg(name, r)?;
        let mac = bytes_arg(name, s)?;
        let Some((a, b)) = KeyDirectory::parse_secret_handle(key_handle) else {
            return Ok(vec![]);
        };
        let Some(secret) = resolve_secret(&k, me, key_handle) else {
            return Ok(vec![]);
        };
        let mac_verifier = move |_signer: Symbol, message: &[u8], sig: &[u8]| {
            verify_mac(&hmac_sha1(&secret, message), sig)
        };
        let (ok, _hit) = vc.lock().unwrap_or_else(|e| e.into_inner()).check(
            &mac_verifier,
            hmac_cache_identity(a, b),
            &rule_bytes(rule),
            mac,
        );
        if ok {
            Ok(vec![vec![r.clone(), s.clone(), key_handle.clone()]])
        } else {
            Ok(vec![])
        }
    });

    // encryptrule(R, K, C): deterministic (SIV) encryption of rule R
    // under shared secret K (§4.1.3 confidentiality).
    let k = keys.clone();
    builtins.register("encryptrule", 3, move |args| {
        let name = Symbol::intern("encryptrule");
        let r = lbtrust_datalog::builtins::require_bound(name, args, 0)?;
        let key_handle = lbtrust_datalog::builtins::require_bound(name, args, 1)?;
        let rule = quote_arg(name, r)?;
        let Some(secret) = resolve_secret(&k, me, key_handle) else {
            return Ok(vec![]);
        };
        let plain = rule_bytes(rule);
        let nonce = stream::siv_nonce(&secret, &plain);
        let cipher = stream::encrypt_with_nonce(&secret, &nonce, &plain);
        Ok(vec![vec![
            r.clone(),
            key_handle.clone(),
            Value::bytes(&cipher),
        ]])
    });

    // decryptrule(C, K, R): decrypt and re-parse. A wrong key produces
    // garbage that fails to parse, yielding no fact (not an error).
    let k = keys.clone();
    builtins.register("decryptrule", 3, move |args| {
        let name = Symbol::intern("decryptrule");
        let c = lbtrust_datalog::builtins::require_bound(name, args, 0)?;
        let key_handle = lbtrust_datalog::builtins::require_bound(name, args, 1)?;
        let cipher = bytes_arg(name, c)?;
        let Some(secret) = resolve_secret(&k, me, key_handle) else {
            return Ok(vec![]);
        };
        let Some(plain) = stream::decrypt(&secret, cipher) else {
            return Ok(vec![]);
        };
        let Ok(text) = String::from_utf8(plain) else {
            return Ok(vec![]);
        };
        let Ok(rule) = parse_rule(&text) else {
            return Ok(vec![]);
        };
        Ok(vec![vec![
            c.clone(),
            key_handle.clone(),
            Value::Quote(Arc::new(rule)),
        ]])
    });

    // sha1digest(R, H): integrity hash of a rule (§4.1.3).
    builtins.register("sha1digest", 2, move |args| {
        let name = Symbol::intern("sha1digest");
        let r = lbtrust_datalog::builtins::require_bound(name, args, 0)?;
        let rule = quote_arg(name, r)?;
        let digest = Sha1::digest(&rule_bytes(rule));
        Ok(vec![vec![r.clone(), Value::bytes(&digest)]])
    });

    // crc32sum(R, C): cheap checksum of a rule (§4.1.3).
    builtins.register("crc32sum", 2, move |args| {
        let name = Symbol::intern("crc32sum");
        let r = lbtrust_datalog::builtins::require_bound(name, args, 0)?;
        let rule = quote_arg(name, r)?;
        let sum = crc32::crc32(&rule_bytes(rule));
        Ok(vec![vec![r.clone(), Value::Int(sum as i64)]])
    });
}

/// Resolves a shared-secret handle, requiring `me` to be a party.
fn resolve_secret(keys: &SharedKeys, me: Principal, handle: &Value) -> Option<Vec<u8>> {
    let (a, b) = KeyDirectory::parse_secret_handle(handle)?;
    if a != me && b != me {
        return None;
    }
    keys.read().shared_secret(a, b).map(<[u8]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::{rsa_priv_handle, rsa_pub_handle, shared_keys, shared_secret_handle};

    fn setup() -> (SharedKeys, Principal, Principal) {
        let keys = shared_keys();
        let alice = Symbol::intern("alice");
        let bob = Symbol::intern("bob");
        {
            let mut guard = keys.write();
            guard.generate_rsa(alice, 512, 1);
            guard.generate_rsa(bob, 512, 2);
            guard.generate_shared_secret(alice, bob, 3);
        }
        (keys, alice, bob)
    }

    fn quote(src: &str) -> Value {
        Value::Quote(Arc::new(parse_rule(src).unwrap()))
    }

    #[test]
    fn rsa_sign_and_verify_via_builtins() {
        let (keys, alice, _) = setup();
        let mut b = Builtins::new();
        register_crypto_builtins(&mut b, alice, keys);
        let r = quote("good(carol).");
        let signed = b
            .invoke(
                Symbol::intern("rsasign"),
                &[Some(r.clone()), None, Some(rsa_priv_handle(alice))],
            )
            .unwrap()
            .unwrap();
        assert_eq!(signed.len(), 1);
        let sig = signed[0][1].clone();
        let verified = b
            .invoke(
                Symbol::intern("rsaverify"),
                &[
                    Some(r.clone()),
                    Some(sig.clone()),
                    Some(rsa_pub_handle(alice)),
                ],
            )
            .unwrap()
            .unwrap();
        assert_eq!(verified.len(), 1);
        // A different rule fails verification.
        let other = quote("good(mallory).");
        let bad = b
            .invoke(
                Symbol::intern("rsaverify"),
                &[Some(other), Some(sig), Some(rsa_pub_handle(alice))],
            )
            .unwrap()
            .unwrap();
        assert!(bad.is_empty());
    }

    #[test]
    fn cannot_sign_with_foreign_private_key() {
        let (keys, alice, bob) = setup();
        let mut b = Builtins::new();
        register_crypto_builtins(&mut b, alice, keys);
        let out = b
            .invoke(
                Symbol::intern("rsasign"),
                &[Some(quote("p(a).")), None, Some(rsa_priv_handle(bob))],
            )
            .unwrap()
            .unwrap();
        assert!(out.is_empty(), "alice must not sign as bob");
    }

    #[test]
    fn hmac_roundtrip_and_third_party_exclusion() {
        let (keys, alice, bob) = setup();
        let handle = shared_secret_handle(alice, bob);
        let mut ab = Builtins::new();
        register_crypto_builtins(&mut ab, alice, keys.clone());
        let r = quote("reachable(a,b).");
        let out = ab
            .invoke(
                Symbol::intern("hmacsign"),
                &[Some(r.clone()), Some(handle.clone()), None],
            )
            .unwrap()
            .unwrap();
        let mac = out[0][2].clone();
        // Bob verifies.
        let mut bb = Builtins::new();
        register_crypto_builtins(&mut bb, bob, keys.clone());
        let ok = bb
            .invoke(
                Symbol::intern("hmacverify"),
                &[Some(r.clone()), Some(mac.clone()), Some(handle.clone())],
            )
            .unwrap()
            .unwrap();
        assert_eq!(ok.len(), 1);
        // Carol (not a party) cannot even compute it.
        let carol = Symbol::intern("carol");
        let mut cb = Builtins::new();
        register_crypto_builtins(&mut cb, carol, keys);
        let denied = cb
            .invoke(
                Symbol::intern("hmacverify"),
                &[Some(r), Some(mac), Some(handle)],
            )
            .unwrap()
            .unwrap();
        assert!(denied.is_empty());
    }

    #[test]
    fn encrypt_decrypt_roundtrip_deterministic() {
        let (keys, alice, bob) = setup();
        let handle = shared_secret_handle(alice, bob);
        let mut b = Builtins::new();
        register_crypto_builtins(&mut b, alice, keys);
        let r = quote("permission(alice,f,read).");
        let enc = |r: &Value| {
            b.invoke(
                Symbol::intern("encryptrule"),
                &[Some(r.clone()), Some(handle.clone()), None],
            )
            .unwrap()
            .unwrap()[0][2]
                .clone()
        };
        let c1 = enc(&r);
        let c2 = enc(&r);
        assert_eq!(c1, c2, "SIV encryption must be deterministic");
        let dec = b
            .invoke(
                Symbol::intern("decryptrule"),
                &[Some(c1), Some(handle.clone()), None],
            )
            .unwrap()
            .unwrap();
        assert_eq!(dec[0][2], r);
    }

    #[test]
    fn scheme_preludes_parse() {
        for scheme in AuthScheme::ALL {
            let src = scheme.prelude();
            let program = lbtrust_datalog::parse_program(&src)
                .unwrap_or_else(|e| panic!("{scheme} prelude: {e}"));
            assert_eq!(program.rules.len(), 2, "{scheme}: exp1 + exp2");
            assert_eq!(program.constraints.len(), 1, "{scheme}: exp3");
        }
    }

    #[test]
    fn integrity_builtins() {
        let (keys, alice, _) = setup();
        let mut b = Builtins::new();
        register_crypto_builtins(&mut b, alice, keys);
        let r = quote("p(a).");
        let h = b
            .invoke(Symbol::intern("sha1digest"), &[Some(r.clone()), None])
            .unwrap()
            .unwrap();
        assert_eq!(h.len(), 1);
        let c = b
            .invoke(Symbol::intern("crc32sum"), &[Some(r), None])
            .unwrap()
            .unwrap();
        assert!(matches!(c[0][1], Value::Int(_)));
    }
}
