//! Delegation constructs (§4.2 of the paper): `delegates`, delegation
//! depth and width restriction, and threshold structures.

/// `del0`/`del1`: predicate-restricted delegation. When
/// `delegates(me,U2,P)` holds, activate any rule said by `U2` whose head
/// predicate is `P` (the speaks-for construct "where U2 speaks for U1
/// with respect to P").
///
/// Divergence note: the paper's `del1` writes the delegated predicate as
/// a *quote* in `delegates`' third argument; we bind the head functor
/// meta-variable `P` to the delegated predicate name directly, which is
/// equivalent under our entity encoding (predicate entity = name symbol)
/// and avoids a doubly-nested template.
pub const DELEGATES: &str = "\
    delegates(U1,U2,P) -> prin(U1), prin(U2).\n\
    active([| active(R) <- says(U2,me,R), R = [| P(T*) <- A*. |]. |]) <- delegates(me,U2,P).\n";

/// `dd0`–`dd3`: delegation-depth bookkeeping. `delDepth(me,U,P,N)`
/// restricts the chain below `U` for predicate `P` to length `N`.
///
/// Interpretation note: the paper's `dd2`/`dd3` recursion is entirely
/// grantor-local and never ships the initial budget to the delegatee, so
/// taken literally no depth information would ever reach the principal
/// that must observe `dd4`. We implement the stated *intent* ("the
/// recursive case … a new limit of N-1 is inferred between U2 and U3"):
///
/// * the grantor records and **sends** the budget to its delegatee;
/// * a principal holding budget `N > 0` that re-delegates ships `N-1`;
/// * received budget facts self-activate (selective activation, so this
///   works without the blanket `says1`);
/// * `dd4` rejects delegation by a principal whose budget is 0.
pub const DELEGATION_DEPTH: &str = "\
    inferredDelDepth(me,U,P,N) <- delDepth(me,U,P,N).\n\
    says(me,U,[| inferredDelDepth(me,U,P,N). |]) <- delDepth(me,U,P,N).\n\
    says(me,U2,[| inferredDelDepth(me,U2,P,N-1). |]) <- inferredDelDepth(_,me,P,N), delegates(me,U2,P), N > 0.\n\
    active(R) <- says(_,me,R), R = [| inferredDelDepth(T*). |].\n";

/// `dd4`: the depth-violation constraint — a principal holding an
/// inferred depth of 0 must not delegate further.
pub const DELEGATION_DEPTH_CONSTRAINT: &str = "inferredDelDepth(_,me,P,0) -> !delegates(me,_,P).\n";

/// Delegation *width* (§4.2.1): only principals in `delWidth(me,P,U)` may
/// appear in the chain — enforced by refusing delegation to anyone
/// outside the allowed set.
pub const DELEGATION_WIDTH_CONSTRAINT: &str =
    "delegates(me,U,P), delWidthRestricted(me,P) -> delWidth(me,P,U).\n";

/// Unweighted threshold (`wd0`–`wd2`, §4.2.2): `creditOK(C)` when at
/// least `K` distinct principals in group `G` say so. This returns the
/// general pattern specialized by name.
pub fn threshold_rules(group: &str, pred: &str, k: usize) -> String {
    format!(
        "{pred}Count(C,N) <- agg<<N = count(U)>> pringroup(U,{group}), says(U,me,[| {pred}(C). |]).\n\
         {pred}(C) <- {pred}Count(C,N), N >= {k}.\n"
    )
}

/// A cycle-free threshold variant for listeners that also *derive*
/// `says` facts (exports).
///
/// The paper's `wd2` aggregates directly over `says`. Graph-level
/// stratification cannot tell incoming `says` tuples (which the
/// aggregation reads) apart from outgoing ones (which export rules
/// derive), so a principal that both counts votes and exports anything
/// would be rejected as unstratifiable. This variant routes votes
/// through meta-level *activation* — exactly the mechanism of `says1` —
/// which transfers facts between relations without creating a dependency
/// edge: group members say `[| <pred>Vote(<member>, C). |]`, the quote is
/// activated into a local `<pred>Vote` relation, a constraint pins the
/// vote's first argument to its actual sender, and the aggregation runs
/// over the local relation.
pub fn threshold_vote_rules(group: &str, pred: &str, k: usize) -> String {
    format!(
        "active(R) <- says(U,me,R), pringroup(U,{group}), R = [| {pred}Vote(T*). |].\n\
         says(U2,me,[| {pred}Vote(U,C) |]) -> U2 = U.\n\
         {pred}Count(C,N) <- agg<<N = count(U)>> {pred}Vote(U,C), pringroup(U,{group}).\n\
         {pred}(C) <- {pred}Count(C,N), N >= {k}.\n"
    )
}

/// Weighted threshold (§4.2.2): like [`threshold_rules`] but each
/// principal's vote carries its `weight(U,W)`, and the total must reach
/// `k`.
pub fn weighted_threshold_rules(group: &str, pred: &str, k: i64) -> String {
    format!(
        "{pred}Weight(C,N) <- agg<<N = total(W)>> pringroup(U,{group}), weight(U,W), says(U,me,[| {pred}(C). |]).\n\
         {pred}(C) <- {pred}Weight(C,N), N >= {k}.\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbtrust_datalog::parse_program;

    #[test]
    fn preludes_parse() {
        let p = parse_program(DELEGATES).unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.constraints.len(), 1);
        let p = parse_program(DELEGATION_DEPTH).unwrap();
        assert_eq!(p.rules.len(), 4);
        assert_eq!(
            parse_program(DELEGATION_DEPTH_CONSTRAINT)
                .unwrap()
                .constraints
                .len(),
            1
        );
        assert_eq!(
            parse_program(DELEGATION_WIDTH_CONSTRAINT)
                .unwrap()
                .constraints
                .len(),
            1
        );
    }

    #[test]
    fn threshold_sources_parse() {
        let src = threshold_rules("creditBureau", "creditOK", 3);
        let p = parse_program(&src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].agg.is_some());
        let src = weighted_threshold_rules("creditBureau", "creditOK", 5);
        let p = parse_program(&src).unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn threshold_vote_source_parses() {
        let src = threshold_vote_rules("accessMgrGroup", "mayread", 2);
        let p = parse_program(&src).unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.constraints.len(), 1);
    }
}
