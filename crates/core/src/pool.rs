//! The persistent worker pool behind the parallel quiescence engine.
//!
//! The paper's execution model is *distributed*: each principal runs
//! its local fixpoint independently and exchanges signed tuples. The
//! runtime exploits exactly that independence, but unlike the original
//! spawn-per-phase engine (a fresh `std::thread::scope` per phase per
//! step, ~60µs of spawn cost each, with contiguous registration-order
//! slices that let one hot hub principal load a single worker), the
//! pool here is created **once** at [`crate::System::with_shards`] and
//! lives as long as the `System`:
//!
//! * **Ownership, not borrowing.** Tasks are *owned* values (a
//!   `Workspace`, a `CertStore`, a delivery job) moved out of the
//!   `System`'s maps for the duration of one batch and moved back at
//!   the sequential merge. Moving the structs is a shallow memcpy —
//!   the same cost as building the per-shard `&mut` reference maps the
//!   scoped engine needed — and it keeps the whole pool inside
//!   `#![forbid(unsafe_code)]`: no lifetime erasure, no scoped-thread
//!   tricks.
//! * **Per-principal granularity + stealing.** Each batch is split
//!   into per-worker queues of `(registration index, task)` pairs. A
//!   worker drains its own queue front-to-back; an idle worker steals
//!   from the *back* of the most-loaded queue, so a skewed topology's
//!   backlog spreads instead of serializing on one worker.
//! * **Determinism by construction.** Results are keyed by the
//!   submission index and handed back in index order; every merge
//!   point in the `System` is sequential in registration order. Which
//!   worker ran a task — and whether it was stolen — is therefore
//!   unobservable in the quiescent state (the serial ≡ sharded
//!   equivalence proptests pin this down). Steal counts and per-worker
//!   busy times *are* scheduling-dependent, which is why they feed
//!   volatile metrics only.
//! * **Panic propagation.** A panicking task poisons the batch: the
//!   remaining queued tasks are dropped, the first payload is captured,
//!   and [`WorkerPool::run_batch`] re-raises it on the submitting
//!   thread once in-flight tasks drain. The worker threads themselves
//!   survive and the pool stays usable.
//!
//! `shards = 1` never constructs a pool at all — the `System` keeps
//! its inline serial paths, byte-for-byte the serial engine.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// How [`crate::System::run_to_quiescence`] assigns per-principal
/// tasks to pool workers (see [`crate::System::with_partition`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous registration-order slices, sized within one task of
    /// each other — the original sharded engine's layout. With
    /// stealing disabled this reproduces the pre-pool behaviour and
    /// serves as the ablation baseline.
    Contiguous,
    /// Greedy LPT (longest-processing-time-first) assignment over
    /// per-principal cost estimates recomputed between steps, so a hub
    /// whose fixpoint dominated the last step no longer shares a
    /// worker with its busiest neighbours (see [`CostModel`]).
    #[default]
    CostAware,
}

/// Where the per-principal cost estimates driving
/// [`PartitionStrategy::CostAware`] come from (see
/// [`crate::System::with_cost_model`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CostModel {
    /// Deterministic counters from the last evaluation: rules fired
    /// plus facts derived. Identical across runs and shard counts, so
    /// the partition itself is reproducible.
    #[default]
    Deterministic,
    /// Wall-clock nanoseconds of the last evaluation. Often a sharper
    /// signal, but it varies run to run — opt-in only, and the
    /// partition it produces is *not* reproducible (the quiescent
    /// state still is).
    WallTime,
}

/// Caps a requested worker count to the number of work items (queueing
/// to more workers than tasks buys nothing) and to at least one.
pub(crate) fn clamp_shards(requested: usize, items: usize) -> usize {
    requested.max(1).min(items.max(1))
}

/// Splits `len` items into `parts` contiguous chunk sizes differing by
/// at most one: the first `len % parts` chunks take the extra item.
/// (The old `chunk_len` ceiling-division sizing skewed the remainder
/// onto the final chunk — `chunk_len(10, 4)` gave 3/3/3/1.)
pub(crate) fn chunk_sizes(len: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// Splits `items` into `parts` contiguous per-worker queues of
/// `(index, item)` pairs, balanced to within one item.
pub(crate) fn split_contiguous<T>(items: Vec<T>, parts: usize) -> Vec<VecDeque<(usize, T)>> {
    let sizes = chunk_sizes(items.len(), parts);
    let mut iter = items.into_iter().enumerate();
    sizes
        .into_iter()
        .map(|n| iter.by_ref().take(n).collect())
        .collect()
}

/// Greedy LPT assignment: items sorted by descending cost (ties by
/// ascending index) each go to the least-loaded worker (ties to the
/// lowest worker index). Returns per-worker index lists, each sorted
/// ascending so a worker processes its share in registration order.
/// Fully deterministic for deterministic costs.
pub(crate) fn lpt_assign(costs: &[u64], parts: usize) -> Vec<Vec<usize>> {
    let parts = parts.max(1);
    let mut by_cost: Vec<usize> = (0..costs.len()).collect();
    by_cost.sort_by_key(|&i| (std::cmp::Reverse(costs[i].max(1)), i));
    let mut loads = vec![0u64; parts];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for i in by_cost {
        let w = (0..parts)
            .min_by_key(|&w| (loads[w], w))
            .expect("parts >= 1");
        loads[w] += costs[i].max(1);
        out[w].push(i);
    }
    for assigned in &mut out {
        assigned.sort_unstable();
    }
    out
}

/// Splits `items` into `parts` per-worker queues by LPT over `costs`
/// (`costs[i]` estimates `items[i]`; missing/zero costs count as 1).
pub(crate) fn split_lpt<T>(
    items: Vec<T>,
    costs: &[u64],
    parts: usize,
) -> Vec<VecDeque<(usize, T)>> {
    debug_assert_eq!(items.len(), costs.len());
    let assignment = lpt_assign(costs, parts);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    assignment
        .into_iter()
        .map(|indices| {
            indices
                .into_iter()
                .map(|i| (i, slots[i].take().expect("each index assigned once")))
                .collect()
        })
        .collect()
}

/// What one [`WorkerPool::run_batch`] hands back.
#[derive(Debug)]
pub(crate) struct BatchReport<R> {
    /// Task results in submission-index order — worker identity erased.
    pub results: Vec<R>,
    /// Per-worker busy time (nanoseconds executing tasks) this batch.
    pub busy: Vec<u64>,
    /// Tasks executed by a worker other than the one they were queued
    /// on. Scheduling-dependent: volatile-metric material only.
    pub steals: u64,
    /// Total tasks executed.
    pub tasks: usize,
}

/// Shared pool state: one mutex over the queues and batch bookkeeping,
/// one condvar each for "work arrived" and "batch finished". Tasks are
/// coarse (a whole workspace fixpoint, a whole destination's delivery
/// batch), so the single lock is taken once per task claim/completion
/// and never contends with task execution itself.
struct PoolState<T, R> {
    queues: Vec<VecDeque<(usize, T)>>,
    stealing: bool,
    batch_active: bool,
    /// Queued tasks not yet claimed.
    remaining: usize,
    /// Claimed tasks still executing.
    running: usize,
    results: Vec<Option<R>>,
    busy: Vec<u64>,
    steals: u64,
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct PoolCore<T, R> {
    state: Mutex<PoolState<T, R>>,
    work_ready: Condvar,
    batch_done: Condvar,
}

fn lock<T, R>(m: &Mutex<PoolState<T, R>>) -> MutexGuard<'_, PoolState<T, R>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The persistent pool: `workers` threads created once, fed batches of
/// owned tasks via [`WorkerPool::run_batch`], joined on drop.
pub(crate) struct WorkerPool<T, R> {
    core: Arc<PoolCore<T, R>>,
    threads: Vec<JoinHandle<()>>,
    /// One clone rides in every worker thread; when every clone is
    /// gone (strong count back to 1 on an outside handle), the threads
    /// have demonstrably exited — the shutdown test's witness.
    #[cfg_attr(not(test), allow(dead_code))]
    liveness: Arc<()>,
}

impl<T: Send + 'static, R: Send + 'static> WorkerPool<T, R> {
    /// Spawns `workers` (at least 1) long-lived threads, each running
    /// `run` on every task it claims.
    pub(crate) fn new(workers: usize, run: Arc<dyn Fn(T) -> R + Send + Sync>) -> WorkerPool<T, R> {
        let workers = workers.max(1);
        let core = Arc::new(PoolCore {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                stealing: false,
                batch_active: false,
                remaining: 0,
                running: 0,
                results: Vec::new(),
                busy: vec![0; workers],
                steals: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        });
        let liveness = Arc::new(());
        let threads = (0..workers)
            .map(|me| {
                let core = Arc::clone(&core);
                let run = Arc::clone(&run);
                let alive = Arc::clone(&liveness);
                std::thread::Builder::new()
                    .name(format!("lbtrust-pool-{me}"))
                    .spawn(move || {
                        let _alive = alive;
                        worker_loop(&core, me, run.as_ref());
                    })
                    .expect("spawning pool worker thread")
            })
            .collect();
        WorkerPool {
            core,
            threads,
            liveness,
        }
    }

    /// The number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.threads.len()
    }

    /// A handle whose strong count drops back to 1 (on an outside
    /// clone) exactly when every worker thread has exited.
    #[cfg(test)]
    pub(crate) fn liveness(&self) -> Arc<()> {
        Arc::clone(&self.liveness)
    }

    /// Runs one batch to completion: queues are per-worker lists of
    /// `(index, task)` pairs with indices `0..total` each appearing
    /// once. Blocks until every task finished, then returns results in
    /// index order. Re-raises the first task panic on this thread
    /// (dropping the rest of the batch); the pool survives and the
    /// next batch runs normally.
    pub(crate) fn run_batch(
        &self,
        mut queues: Vec<VecDeque<(usize, T)>>,
        stealing: bool,
    ) -> BatchReport<R> {
        let workers = self.workers();
        let total: usize = queues.iter().map(VecDeque::len).sum();
        if total == 0 {
            return BatchReport {
                results: Vec::new(),
                busy: vec![0; workers],
                steals: 0,
                tasks: 0,
            };
        }
        // More queues than workers would strand tasks no worker scans;
        // fold the excess into the last worker's queue.
        while queues.len() > workers {
            let extra = queues.pop().expect("len > workers >= 1");
            queues[workers - 1].extend(extra);
        }
        if queues.len() < workers {
            queues.resize_with(workers, VecDeque::new);
        }
        let mut st = lock(&self.core.state);
        debug_assert!(!st.batch_active, "run_batch while a batch is active");
        st.queues = queues;
        st.stealing = stealing;
        st.batch_active = true;
        st.remaining = total;
        st.running = 0;
        st.results = (0..total).map(|_| None).collect();
        st.busy = vec![0; workers];
        st.steals = 0;
        self.core.work_ready.notify_all();
        while st.remaining != 0 || st.running != 0 {
            st = self
                .core
                .batch_done
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.batch_active = false;
        let steals = st.steals;
        let busy = std::mem::take(&mut st.busy);
        let results = std::mem::take(&mut st.results);
        let panic = st.panic.take();
        drop(st);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        BatchReport {
            results: results
                .into_iter()
                .enumerate()
                .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} finished without a result")))
                .collect(),
            busy,
            steals,
            tasks: total,
        }
    }
}

impl<T, R> Drop for WorkerPool<T, R> {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.core.state);
            st.shutdown = true;
        }
        self.core.work_ready.notify_all();
        for handle in self.threads.drain(..) {
            // A worker that panicked outside a task (impossible today:
            // tasks run under catch_unwind) still must not abort drop.
            let _ = handle.join();
        }
    }
}

/// Claims the next task for worker `me`: own queue front first, then —
/// with stealing on — the back of the most-loaded other queue (lowest
/// index on ties).
fn claim<T, R>(st: &mut PoolState<T, R>, me: usize) -> Option<(usize, T, bool)> {
    if !st.batch_active || st.remaining == 0 {
        return None;
    }
    if let Some((index, task)) = st.queues[me].pop_front() {
        st.remaining -= 1;
        return Some((index, task, false));
    }
    if !st.stealing {
        return None;
    }
    let mut victim: Option<usize> = None;
    for (w, q) in st.queues.iter().enumerate() {
        if w == me || q.is_empty() {
            continue;
        }
        let better = match victim {
            None => true,
            Some(v) => q.len() > st.queues[v].len(),
        };
        if better {
            victim = Some(w);
        }
    }
    let v = victim?;
    let (index, task) = st.queues[v].pop_back().expect("victim queue non-empty");
    st.remaining -= 1;
    Some((index, task, true))
}

fn worker_loop<T, R>(core: &PoolCore<T, R>, me: usize, run: &dyn Fn(T) -> R) {
    let mut st = lock(&core.state);
    loop {
        if st.shutdown {
            return;
        }
        let Some((index, task, stolen)) = claim(&mut st, me) else {
            st = core.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            continue;
        };
        st.running += 1;
        if stolen {
            st.steals += 1;
        }
        drop(st);
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run(task)));
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        st = lock(&core.state);
        st.busy[me] += nanos;
        st.running -= 1;
        match outcome {
            Ok(result) => st.results[index] = Some(result),
            Err(payload) => {
                // First panic wins; the unclaimed remainder of the
                // batch is dropped so the submitter unblocks as soon
                // as in-flight tasks drain.
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
                let dropped: usize = st.queues.iter().map(VecDeque::len).sum();
                st.remaining -= dropped;
                for q in &mut st.queues {
                    q.clear();
                }
            }
        }
        if st.remaining == 0 && st.running == 0 {
            core.batch_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn clamping() {
        assert_eq!(clamp_shards(0, 5), 1);
        assert_eq!(clamp_shards(4, 5), 4);
        assert_eq!(clamp_shards(8, 5), 5);
        assert_eq!(clamp_shards(4, 0), 1);
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        // The old `chunk_len(10, 4) = 3` sizing produced 3/3/3/1.
        assert_eq!(chunk_sizes(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(chunk_sizes(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(chunk_sizes(0, 4), vec![0, 0, 0, 0]);
        assert_eq!(chunk_sizes(5, 1), vec![5]);
        assert_eq!(chunk_sizes(3, 8), vec![1, 1, 1, 0, 0, 0, 0, 0]);
        for (len, parts) in [(10, 4), (17, 5), (1, 3), (100, 7)] {
            let sizes = chunk_sizes(len, parts);
            assert_eq!(sizes.iter().sum::<usize>(), len);
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(
                max - min <= 1,
                "chunk_sizes({len},{parts}) skewed: {sizes:?}"
            );
        }
    }

    #[test]
    fn contiguous_split_keeps_order_and_balance() {
        let queues = split_contiguous((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(queues.len(), 4);
        assert_eq!(queues[0], VecDeque::from(vec![(0, 0), (1, 1), (2, 2)]));
        assert_eq!(queues[3], VecDeque::from(vec![(8, 8), (9, 9)]));
    }

    #[test]
    fn lpt_spreads_a_hub_heavy_cost_vector() {
        // One hub at 50x the cost of anything else: LPT isolates it.
        let costs = vec![50, 1, 1, 1, 1, 1, 1, 1];
        let assignment = lpt_assign(&costs, 4);
        assert_eq!(assignment.iter().map(Vec::len).sum::<usize>(), 8);
        let hub_worker = assignment
            .iter()
            .position(|a| a.contains(&0))
            .expect("hub assigned");
        assert_eq!(
            assignment[hub_worker],
            vec![0],
            "the dominant task must get a worker to itself"
        );
        // Deterministic: same inputs, same assignment.
        assert_eq!(assignment, lpt_assign(&costs, 4));
        // Each worker's share is registration-ordered.
        for a in &assignment {
            assert!(a.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn pool_returns_results_in_index_order() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(3, Arc::new(|x| x * 2));
        let queues = split_contiguous((0..10u64).collect::<Vec<_>>(), 3);
        let report = pool.run_batch(queues, true);
        assert_eq!(report.tasks, 10);
        assert_eq!(
            report.results,
            (0..10u64).map(|x| x * 2).collect::<Vec<_>>()
        );
        // An empty batch is a no-op.
        let report = pool.run_batch(Vec::new(), true);
        assert_eq!(report.tasks, 0);
        assert!(report.results.is_empty());
    }

    /// Deterministic steal witness: worker 0's first task blocks until
    /// the *other* task — queued behind it on worker 0's own queue —
    /// completes. Only a steal by worker 1 can run it, so the batch
    /// finishing at all proves stealing works (a broken pool fails the
    /// recv timeout rather than deadlocking).
    #[test]
    fn idle_worker_steals_backlog() {
        enum Task {
            Block,
            Signal,
        }
        let (tx, rx) = mpsc::channel::<()>();
        let tx = Mutex::new(tx);
        let rx = Mutex::new(rx);
        let pool: WorkerPool<Task, bool> = WorkerPool::new(
            2,
            Arc::new(move |task| match task {
                Task::Block => rx
                    .lock()
                    .unwrap()
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .is_ok(),
                Task::Signal => {
                    let _ = tx.lock().unwrap().send(());
                    true
                }
            }),
        );
        let queues = vec![
            VecDeque::from(vec![(0, Task::Block), (1, Task::Signal)]),
            VecDeque::new(),
        ];
        let report = pool.run_batch(queues, true);
        assert_eq!(report.results, vec![true, true]);
        // Worker 1 must have stolen the signal task (and, if it woke
        // before worker 0, possibly the blocker too).
        assert!(
            (1..=2).contains(&report.steals),
            "the signal task must have been stolen (steals = {})",
            report.steals
        );
    }

    #[test]
    fn no_steals_without_stealing() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(4, Arc::new(|x| x + 1));
        let queues = split_contiguous((0..32u64).collect::<Vec<_>>(), 4);
        let report = pool.run_batch(queues, false);
        assert_eq!(report.steals, 0);
        assert_eq!(report.results, (1..=32u64).collect::<Vec<_>>());
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(
            2,
            Arc::new(|x| {
                assert!(x != 3, "poisoned task");
                x
            }),
        );
        let queues = split_contiguous((0..6u64).collect::<Vec<_>>(), 2);
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run_batch(queues, true)));
        let payload = caught.expect_err("the task panic must reach the submitter");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("poisoned task"), "unexpected payload: {msg}");
        // Same pool, next batch: business as usual.
        let queues = split_contiguous((10..16u64).collect::<Vec<_>>(), 2);
        let report = pool.run_batch(queues, true);
        assert_eq!(report.results, (10..16u64).collect::<Vec<_>>());
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(4, Arc::new(|x| x));
        let report = pool.run_batch(split_contiguous(vec![1, 2, 3], 4), true);
        assert_eq!(report.results, vec![1, 2, 3]);
        let alive = pool.liveness();
        assert_eq!(Arc::strong_count(&alive), 1 + 1 + 4); // ours + pool's + workers
        drop(pool);
        assert_eq!(
            Arc::strong_count(&alive),
            1,
            "worker threads must be joined (not leaked) when the pool drops"
        );
    }
}
