//! Principals and key material.
//!
//! A principal is "a component in a distributed environment" (§2.2 of the
//! paper) with its own context (workspace). The [`KeyDirectory`] holds
//! the RSA keypairs and pairwise shared secrets of a simulated
//! deployment; each workspace's crypto builtins resolve *key handles*
//! (symbols like `rsa:priv:alice`) against it, and refuse to use private
//! material that does not belong to the local principal.

use lbtrust_crypto::KeyPair;
use lbtrust_datalog::{Symbol, Value};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// A principal's name.
pub type Principal = Symbol;

/// The key handle naming `who`'s RSA private key.
pub fn rsa_priv_handle(who: Principal) -> Value {
    Value::sym(&format!("rsa:priv:{who}"))
}

/// The key handle naming `who`'s RSA public key.
pub fn rsa_pub_handle(who: Principal) -> Value {
    Value::sym(&format!("rsa:pub:{who}"))
}

/// The key handle naming the shared secret between `a` and `b`
/// (order-insensitive).
pub fn shared_secret_handle(a: Principal, b: Principal) -> Value {
    let (lo, hi) = if a.as_str() <= b.as_str() {
        (a, b)
    } else {
        (b, a)
    };
    Value::sym(&format!("hmac:{lo}:{hi}"))
}

/// Shared key material for a simulated deployment.
///
/// In a real deployment every principal would hold only its own private
/// key; here a single directory plays all roles, and the *builtins*
/// enforce that a workspace for principal `p` can only sign with
/// `rsa:priv:p` and only MAC with secrets `p` participates in.
#[derive(Default)]
pub struct KeyDirectory {
    rsa: HashMap<Principal, KeyPair>,
    secrets: HashMap<(Principal, Principal), Vec<u8>>,
}

impl KeyDirectory {
    /// An empty directory.
    pub fn new() -> KeyDirectory {
        KeyDirectory::default()
    }

    /// Generates and stores an RSA keypair for `who` with the given
    /// modulus size. Deterministic for a given seed.
    pub fn generate_rsa(&mut self, who: Principal, bits: usize, seed: u64) -> &KeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        self.rsa
            .entry(who)
            .or_insert_with(|| KeyPair::generate(bits, &mut rng))
    }

    /// The keypair of `who`, if any.
    pub fn rsa(&self, who: Principal) -> Option<&KeyPair> {
        self.rsa.get(&who)
    }

    /// Installs a shared secret between `a` and `b`.
    pub fn set_shared_secret(&mut self, a: Principal, b: Principal, secret: Vec<u8>) {
        let (lo, hi) = if a.as_str() <= b.as_str() {
            (a, b)
        } else {
            (b, a)
        };
        self.secrets.insert((lo, hi), secret);
    }

    /// Generates a random shared secret between `a` and `b`.
    pub fn generate_shared_secret(&mut self, a: Principal, b: Principal, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let secret: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
        self.set_shared_secret(a, b, secret);
    }

    /// The shared secret between `a` and `b`, if any.
    pub fn shared_secret(&self, a: Principal, b: Principal) -> Option<&[u8]> {
        let (lo, hi) = if a.as_str() <= b.as_str() {
            (a, b)
        } else {
            (b, a)
        };
        self.secrets.get(&(lo, hi)).map(Vec::as_slice)
    }

    /// Principals with RSA keys.
    pub fn rsa_principals(&self) -> Vec<Principal> {
        let mut v: Vec<Principal> = self.rsa.keys().copied().collect();
        v.sort_unstable_by_key(|s| s.as_str());
        v
    }

    /// Secret pairs (sorted principal pairs).
    pub fn secret_pairs(&self) -> Vec<(Principal, Principal)> {
        let mut v: Vec<(Principal, Principal)> = self.secrets.keys().copied().collect();
        v.sort_unstable_by_key(|(a, b)| (a.as_str(), b.as_str()));
        v
    }

    /// Resolves an RSA key handle value to `(principal, private?)`.
    pub fn parse_rsa_handle(handle: &Value) -> Option<(Principal, bool)> {
        let sym = handle.as_sym()?;
        let name = sym.as_str();
        if let Some(rest) = name.strip_prefix("rsa:priv:") {
            Some((Symbol::intern(rest), true))
        } else {
            name.strip_prefix("rsa:pub:")
                .map(|rest| (Symbol::intern(rest), false))
        }
    }

    /// Resolves a shared-secret handle value to the sorted pair.
    pub fn parse_secret_handle(handle: &Value) -> Option<(Principal, Principal)> {
        let sym = handle.as_sym()?;
        let rest = sym.as_str().strip_prefix("hmac:")?;
        let (a, b) = rest.split_once(':')?;
        Some((Symbol::intern(a), Symbol::intern(b)))
    }
}

/// A shareable, thread-safe key directory.
pub type SharedKeys = Arc<RwLock<KeyDirectory>>;

/// Creates an empty shared directory.
pub fn shared_keys() -> SharedKeys {
    Arc::new(RwLock::new(KeyDirectory::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Principal {
        Symbol::intern(name)
    }

    #[test]
    fn handles_roundtrip() {
        let alice = p("alice");
        let bob = p("bob");
        assert_eq!(
            KeyDirectory::parse_rsa_handle(&rsa_priv_handle(alice)),
            Some((alice, true))
        );
        assert_eq!(
            KeyDirectory::parse_rsa_handle(&rsa_pub_handle(bob)),
            Some((bob, false))
        );
        assert_eq!(
            KeyDirectory::parse_secret_handle(&shared_secret_handle(bob, alice)),
            Some((alice, bob)) // sorted
        );
        assert_eq!(
            shared_secret_handle(alice, bob),
            shared_secret_handle(bob, alice)
        );
    }

    #[test]
    fn rsa_generation_is_seeded() {
        let mut d1 = KeyDirectory::new();
        let mut d2 = KeyDirectory::new();
        let k1 = d1.generate_rsa(p("alice"), 512, 42).public_key().clone();
        let k2 = d2.generate_rsa(p("alice"), 512, 42).public_key().clone();
        assert_eq!(k1, k2);
        let k3 = d2.generate_rsa(p("bob"), 512, 43).public_key().clone();
        assert_ne!(k1, k3);
    }

    #[test]
    fn shared_secrets_symmetric() {
        let mut d = KeyDirectory::new();
        d.set_shared_secret(p("bob"), p("alice"), vec![1, 2, 3]);
        assert_eq!(
            d.shared_secret(p("alice"), p("bob")),
            Some(&[1u8, 2, 3][..])
        );
        assert_eq!(
            d.shared_secret(p("bob"), p("alice")),
            Some(&[1u8, 2, 3][..])
        );
        assert_eq!(d.shared_secret(p("alice"), p("carol")), None);
    }

    #[test]
    fn bad_handles_rejected() {
        assert!(KeyDirectory::parse_rsa_handle(&Value::sym("nonsense")).is_none());
        assert!(KeyDirectory::parse_rsa_handle(&Value::Int(3)).is_none());
        assert!(KeyDirectory::parse_secret_handle(&Value::sym("hmac:missing")).is_none());
    }
}
