//! The workspace-side contract of the anti-entropy revocation gossip
//! layer (ROADMAP: "revocation gossip over sendlog").
//!
//! The gossip *logic* — which peers to advertise to, and when a
//! received advertisement warrants a pull — is a SeNDlog program (see
//! `lbtrust-sendlog::gossip`), loaded into every workspace and
//! evaluated by the ordinary distributed fixpoint. This module defines
//! the fact vocabulary that program is written against, shared between
//! the [`crate::System`] runtime (which asserts inputs and reads
//! derived messages) and the program itself:
//!
//! * `revfp(me, I, F)` — **input**: the local store's revocation
//!   fingerprint for signer `I` (a hex string; [`ZERO_FP_HEX`] when the
//!   store holds nothing signed by `I`). Refreshed by the runtime at
//!   the start of every quiescence step.
//! * `gsays(W, me, [| revsummary(W, I, F). |])` — **input**: peer `W`'s
//!   latest advertised fingerprint for signer `I`, asserted when a
//!   `revsummary` wire frame arrives (superseding any previous
//!   advertisement from `W` about `I`).
//! * `gsays(me, N, [| revsummary(me, I, F). |])` — **derived**: an
//!   advertisement this node should send to peer `N`. The runtime ships
//!   it as a compact `revsummary` frame.
//! * `gsays(me, W, [| revpull(me, I). |])` — **derived**: a pull this
//!   node should send to `W`, because `W`'s advertised fingerprint for
//!   `I` differs from the local one. Shipped as a `revpull` frame; the
//!   responder answers with `revgossip` frames carrying `I`'s signed
//!   revocation objects.
//!
//! `gsays` is the gossip program's private communication predicate
//! (the SeNDlog translation's `says` renamed): the payloads here are
//! equality-compared fingerprints carried on their own wire frames, so
//! routing them through the authenticated `says`/`export` pipeline
//! would RSA-sign every advertisement each round for no gain.

use crate::principal::Principal;
use lbtrust_datalog::ast::{Atom, PredRef, Rule, Term};
use lbtrust_datalog::{Symbol, Tuple, Value};
use lbtrust_net::WireDigest;
use std::sync::Arc;

/// The gossip program's communication predicate (its translated
/// `says`).
pub const GOSSIP_SAYS: &str = "gsays";
/// The local-fingerprint input predicate.
pub const REVFP: &str = "revfp";
/// The advertisement payload predicate (inside `gsays` quotes).
pub const REVSUMMARY: &str = "revsummary";
/// The pull-request payload predicate (inside `gsays` quotes).
pub const REVPULL: &str = "revpull";

/// The fingerprint of an empty revocation set (64 zero hex digits —
/// the XOR fold of zero SHA-256 digests).
pub const ZERO_FP_HEX: &str = "0000000000000000000000000000000000000000000000000000000000000000";

/// Hex rendering of a store fingerprint, as carried in `revfp` facts
/// and `revsummary` frames.
pub fn fingerprint_hex(fp: &WireDigest) -> String {
    lbtrust_net::to_hex(fp)
}

/// The `revfp(me, issuer, "fp-hex")` input fact.
pub fn revfp_fact(me: Principal, issuer: Principal, fp_hex: &str) -> (Symbol, Tuple) {
    (
        Symbol::intern(REVFP),
        vec![Value::Sym(me), Value::Sym(issuer), Value::str(fp_hex)],
    )
}

/// The quoted `revsummary(sender, issuer, "fp-hex").` payload rule.
fn summary_quote(sender: Principal, issuer: Principal, fp_hex: &str) -> Arc<Rule> {
    Arc::new(Rule::fact(Atom {
        pred: PredRef::Name(Symbol::intern(REVSUMMARY)),
        key_args: vec![],
        args: vec![
            Term::Val(Value::Sym(sender)),
            Term::Val(Value::Sym(issuer)),
            Term::Val(Value::str(fp_hex)),
        ],
    }))
}

/// The `gsays(sender, me, [| revsummary(sender, issuer, "fp"). |])`
/// input fact asserted when a `revsummary` frame from `sender` lands at
/// `me` — the shape the gossip program's `W says revsummary(W, I, F)`
/// body literal matches.
pub fn advert_fact(
    sender: Principal,
    me: Principal,
    issuer: Principal,
    fp_hex: &str,
) -> (Symbol, Tuple) {
    (
        Symbol::intern(GOSSIP_SAYS),
        vec![
            Value::Sym(sender),
            Value::Sym(me),
            Value::Quote(summary_quote(sender, issuer, fp_hex)),
        ],
    )
}

/// A message the gossip program derived for the runtime to ship.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GossipSend {
    /// Advertise the local fingerprint for `issuer` to `to` (a
    /// `revsummary` frame).
    Summary {
        /// Receiving peer.
        to: Principal,
        /// The signer the fingerprint covers.
        issuer: Principal,
        /// The advertised fingerprint (hex).
        fingerprint: String,
    },
    /// Ask `to` for every signed revocation by `issuer` (a `revpull`
    /// frame).
    Pull {
        /// Responding peer.
        to: Principal,
        /// The signer whose revocations are requested.
        issuer: Principal,
    },
}

impl GossipSend {
    /// The receiving peer.
    pub fn to(&self) -> Principal {
        match self {
            GossipSend::Summary { to, .. } | GossipSend::Pull { to, .. } => *to,
        }
    }
}

/// Decodes one derived `gsays` tuple at `me` into the message it asks
/// the runtime to send. `None` for tuples that are not outgoing
/// messages — incoming advertisements (first argument ≠ `me`),
/// self-addressed derivations, or quotes outside the gossip vocabulary.
pub fn parse_gossip_send(me: Principal, tuple: &[Value]) -> Option<GossipSend> {
    let [Value::Sym(from), Value::Sym(to), Value::Quote(rule)] = tuple else {
        return None;
    };
    if *from != me || *to == me {
        return None;
    }
    let head = rule.heads.first()?;
    let sym_arg = |t: &Term| match t {
        Term::Val(Value::Sym(s)) => Some(*s),
        _ => None,
    };
    match head.pred.name().map(|s| s.as_str()) {
        Some(REVSUMMARY) => match head.args.as_slice() {
            [sender, issuer, Term::Val(Value::Str(fp))] => {
                // The quoted sender must be this node: the program only
                // ever derives advertisements about local state.
                if sym_arg(sender)? != me {
                    return None;
                }
                Some(GossipSend::Summary {
                    to: *to,
                    issuer: sym_arg(issuer)?,
                    fingerprint: fp.to_string(),
                })
            }
            _ => None,
        },
        Some(REVPULL) => match head.args.as_slice() {
            [sender, issuer] => {
                if sym_arg(sender)? != me {
                    return None;
                }
                Some(GossipSend::Pull {
                    to: *to,
                    issuer: sym_arg(issuer)?,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Principal {
        Symbol::intern(s)
    }

    #[test]
    fn advert_fact_parses_back_as_incoming_not_outgoing() {
        let (pred, tuple) = advert_fact(sym("alice"), sym("bob"), sym("carol"), ZERO_FP_HEX);
        assert_eq!(pred.as_str(), GOSSIP_SAYS);
        // At bob, alice's advertisement is an input, not something to
        // re-send.
        assert_eq!(parse_gossip_send(sym("bob"), &tuple), None);
        // At alice (hypothetically holding the same tuple), it *is* an
        // outgoing summary for bob.
        assert_eq!(
            parse_gossip_send(sym("alice"), &tuple),
            Some(GossipSend::Summary {
                to: sym("bob"),
                issuer: sym("carol"),
                fingerprint: ZERO_FP_HEX.to_string(),
            })
        );
    }

    #[test]
    fn pull_quote_parses() {
        let quote = Arc::new(Rule::fact(Atom {
            pred: PredRef::Name(Symbol::intern(REVPULL)),
            key_args: vec![],
            args: vec![
                Term::Val(Value::Sym(sym("alice"))),
                Term::Val(Value::Sym(sym("carol"))),
            ],
        }));
        let tuple = vec![
            Value::Sym(sym("alice")),
            Value::Sym(sym("bob")),
            Value::Quote(quote),
        ];
        assert_eq!(
            parse_gossip_send(sym("alice"), &tuple),
            Some(GossipSend::Pull {
                to: sym("bob"),
                issuer: sym("carol"),
            })
        );
    }

    #[test]
    fn foreign_and_malformed_tuples_are_skipped() {
        let me = sym("alice");
        // Self-addressed.
        let (_, t) = advert_fact(me, me, sym("carol"), ZERO_FP_HEX);
        assert_eq!(parse_gossip_send(me, &t), None);
        // Not a gossip quote.
        let quote = Arc::new(lbtrust_datalog::parse_rule("good(x).").unwrap());
        let t = vec![Value::Sym(me), Value::Sym(sym("bob")), Value::Quote(quote)];
        assert_eq!(parse_gossip_send(me, &t), None);
        // Wrong arity.
        assert_eq!(parse_gossip_send(me, &[Value::Sym(me)]), None);
    }

    #[test]
    fn zero_fp_is_the_empty_xor() {
        assert_eq!(fingerprint_hex(&[0u8; 32]), ZERO_FP_HEX);
    }
}
