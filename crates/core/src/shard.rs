//! Shard partitioning for the parallel distributed fixpoint.
//!
//! The paper's execution model is *distributed*: each principal runs
//! its local fixpoint independently and exchanges signed tuples. The
//! runtime exploits exactly that independence — workspaces (and their
//! certificate stores) are partitioned into contiguous slices of the
//! registration order, each slice owned exclusively by one
//! `std::thread::scope` worker, so the hot path takes no locks. The
//! only shared state workers touch is the process-wide verification
//! cache (already `Sync`) and the key directory (behind an `RwLock`
//! that is only read during a run).
//!
//! Determinism: workers never talk to each other; every cross-shard
//! effect (network sends, placement updates, statistics) is merged
//! sequentially in shard order, which is registration order. A run
//! with N shards therefore reaches the same quiescent state as the
//! serial engine — the property the `parallel` equivalence proptest
//! pins down.

/// Caps a requested shard count to the number of work items (spawning
/// more workers than workspaces buys nothing) and to at least one.
pub(crate) fn clamp_shards(requested: usize, items: usize) -> usize {
    requested.max(1).min(items.max(1))
}

/// The per-shard slice length that splits `len` items into at most
/// `shards` contiguous chunks.
pub(crate) fn chunk_len(len: usize, shards: usize) -> usize {
    len.div_ceil(shards.max(1)).max(1)
}

/// Runs one closure invocation per shard, in parallel when there is
/// more than one shard, returning results in shard order.
///
/// Each shard's work vector is moved into its worker, so items may be
/// exclusive references (`&mut Workspace`, `&mut CertStore`) — the
/// caller guarantees disjointness by construction (each principal's
/// state appears in exactly one shard). The single-shard case runs
/// inline: no thread is spawned, making `shards = 1` byte-for-byte
/// the serial engine.
pub(crate) fn map_shards<T, R, F>(work: Vec<Vec<T>>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> R + Sync,
{
    if work.len() <= 1 {
        return work.into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .into_iter()
            .map(|chunk| {
                let f = &f;
                scope.spawn(move || f(chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_and_chunking() {
        assert_eq!(clamp_shards(0, 5), 1);
        assert_eq!(clamp_shards(4, 5), 4);
        assert_eq!(clamp_shards(8, 5), 5);
        assert_eq!(clamp_shards(4, 0), 1);
        assert_eq!(chunk_len(10, 4), 3);
        assert_eq!(chunk_len(8, 4), 2);
        assert_eq!(chunk_len(0, 4), 1);
        assert_eq!(chunk_len(5, 1), 5);
    }

    #[test]
    fn map_shards_preserves_shard_order() {
        let work: Vec<Vec<usize>> = vec![vec![1, 2], vec![3, 4], vec![5]];
        let sums = map_shards(work, |chunk| chunk.into_iter().sum::<usize>());
        assert_eq!(sums, vec![3, 7, 5]);
    }

    #[test]
    fn map_shards_moves_exclusive_refs() {
        let mut data = [0usize; 6];
        let mut refs: Vec<&mut usize> = data.iter_mut().collect();
        let mut work: Vec<Vec<&mut usize>> = Vec::new();
        while !refs.is_empty() {
            work.push(refs.drain(..refs.len().min(2)).collect());
        }
        map_shards(work, |chunk| {
            for r in chunk {
                *r += 1;
            }
        });
        assert_eq!(data, [1; 6]);
    }
}
