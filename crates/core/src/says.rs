//! The `says` construct (§4.1 of the paper).
//!
//! `says(U1,U2,R)` associates a rule `R` with the principal who said it
//! (`U1`) and the principal it is said to (`U2`). Communication happens
//! in rules; facts are rules with an empty body.

/// The `says`/`export` type declarations (`says0`, `exp0`).
///
/// Divergence note: the paper's `says0` also requires `rule(R)`; we relax
/// that because communicated rules only enter the meta-model's `rule`
/// table once they are activated — requiring it up front would reject
/// every incoming message.
pub const SAYS_DECLS: &str = "\
    says(U1,U2,R) -> prin(U1), prin(U2).\n\
    export[U2](U1,R,S) -> prin(U1), prin(U2).\n";

/// `says1`: automatically activate every rule said to the local
/// principal. The paper presents this as part of the `says` definition;
/// deployments that want *selective* activation (delegation, §4.2)
/// install `sf0`/`del1` rules instead, so this prelude is opt-in.
pub const AUTO_ACTIVATE: &str = "active(R) <- says(_,me,R).\n";

/// Speaks-for (`sf0`, §4.2): `who` speaks for me — activate anything they
/// say.
pub fn speaks_for(who: &str) -> String {
    format!("active(R) <- says({who},me,R).\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbtrust_datalog::parse_program;

    #[test]
    fn preludes_parse() {
        assert_eq!(parse_program(SAYS_DECLS).unwrap().constraints.len(), 2);
        assert_eq!(parse_program(AUTO_ACTIVATE).unwrap().rules.len(), 1);
        assert_eq!(parse_program(&speaks_for("bob")).unwrap().rules.len(), 1);
    }
}
