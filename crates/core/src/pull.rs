//! The top-down-to-bottom-up "pull" rewrite (§5.1 of the paper):
//! "converting a 'pull' request in the body of a rule into two 'pushes'".

/// `pull0` alone: any active rule whose body imports `says(X,me,R)`
/// dispatches a `request(R)` to `X`.
pub const PULL_REQUEST: &str =
    "says(me,X,[| request(R). |]) <- active([| A <- says(X,me,R), A*. |]), X != me.\n";

/// `pull1` alone: respond to a request by saying `R` back — the paper's
/// literal formulation, which *echoes* the requested rule without
/// checking local derivability. Use [`respond_rule`] instead when the
/// response should carry only locally derivable facts.
pub const PULL_ECHO: &str = "says(me,X,R) <- says(X,me,[| request(R). |]).\n";

/// `pull0`: any active rule whose body imports `says(X,me,R)` dispatches
/// a `request(R)` to `X`; `pull1`: a principal receiving a request
/// responds by saying `R` back.
///
/// As written in the paper, `pull1` echoes the requested rule; data-
/// bearing responses are produced by [`respond_rule`]-generated rules
/// that instantiate the requested *fact pattern* against local data
/// (install [`PULL_REQUEST`] + `respond_rule` for that configuration).
pub const PULL_REWRITE: &str =
    "says(me,X,[| request(R). |]) <- active([| A <- says(X,me,R), A*. |]), X != me.\n\
    says(me,X,R) <- says(X,me,[| request(R). |]).\n";

/// A data-bearing responder for predicate `pred` of the given arity:
/// when a fully-ground fact of `pred` is requested and locally derivable,
/// say it back to the requester.
///
/// Ground requests only: open (variable-carrying) requests bind the
/// pattern's positions to the *requester's code variables*, which cannot
/// join against local tuples; goal-directed open queries use
/// `lbtrust_datalog::magic`/`topdown` locally instead (§7's magic-sets
/// bridge).
pub fn respond_rule(pred: &str, arity: usize) -> String {
    let vars: Vec<String> = (0..arity).map(|i| format!("V{i}")).collect();
    let args = vars.join(",");
    format!(
        "says(me,X,[| {pred}({args}). |]) <- says(X,me,[| request([| {pred}({args}). |]). |]), {pred}({args}).\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbtrust_datalog::parse_program;

    #[test]
    fn pull_rules_parse() {
        let p = parse_program(PULL_REWRITE).unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn responder_parses() {
        let src = respond_rule("access", 3);
        let p = parse_program(&src).unwrap();
        assert_eq!(p.rules.len(), 1);
        assert!(src.contains("access(V0,V1,V2)"));
    }
}
