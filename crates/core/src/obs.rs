//! The system's observability surface: where the unified registry,
//! the quiescence phase spans, and the authorization decision journal
//! plug into the runtime.
//!
//! Every [`crate::System`] owns a [`SystemObs`]: a metrics
//! [`Registry`] (shared with each principal's certificate store, the
//! log backends, and the simulated network), wall-clock histograms for
//! each phase of `run_to_quiescence` — including one histogram *per
//! fixpoint shard*, so worker imbalance on skewed topologies is
//! visible — and the decision [`Journal`]. Phase timing is on by
//! default and can be disabled ([`crate::System::set_phase_timing`])
//! for overhead-sensitive runs; the journal is disabled unless a sink
//! is attached.

use std::time::{Duration, Instant};

// The full observability toolkit, so downstream code reaches sinks,
// reports and snapshot types as `lbtrust::obs::*` without a separate
// dependency on the obs crate.
pub use lbtrust_obs::*;

/// The phases of one `run_to_quiescence` step, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuiescePhase {
    /// Phase 0: gossip summary refresh (`quiesce.gossip_prepare_ns`).
    GossipPrepare,
    /// Phase 1: parallel local fixpoints (`quiesce.fixpoint_ns`).
    Fixpoint,
    /// Phase 1b: placement updates (`quiesce.placement_ns`).
    Placement,
    /// Phase 2: export drain into the network (`quiesce.export_drain_ns`).
    ExportDrain,
    /// Phase 2b: gossip sends (`quiesce.gossip_send_ns`).
    GossipSend,
    /// Phase 3: network drain + per-destination delivery
    /// (`quiesce.delivery_ns`).
    Delivery,
    /// Phase 4: batched group commit (`quiesce.group_commit_ns`).
    GroupCommit,
    /// Phase 5: quarantine probes and store re-admission
    /// (`quiesce.fault_recovery_ns`).
    FaultRecovery,
    /// The whole step (`quiesce.step_ns`).
    Step,
}

/// Per-[`crate::System`] observability state.
pub(crate) struct SystemObs {
    registry: Registry,
    pub(crate) journal: Journal,
    timing: bool,
    gossip_prepare: Histogram,
    fixpoint: Histogram,
    placement: Histogram,
    export_drain: Histogram,
    gossip_send: Histogram,
    delivery: Histogram,
    group_commit: Histogram,
    fault_recovery: Histogram,
    step: Histogram,
    /// `quiesce.fixpoint.shard<i>_ns`, grown on first use per shard.
    shard_fixpoints: Vec<Histogram>,
    pub(crate) authz_granted: Counter,
    pub(crate) authz_denied: Counter,
    /// Pool tasks run by a worker other than the one they were queued
    /// on. Volatile: scheduling-dependent, excluded from deterministic
    /// snapshots.
    pool_steals: Counter,
    /// Total tasks dispatched through the worker pool. Volatile: the
    /// serial engine dispatches none, so the count differs by shard
    /// configuration.
    pool_tasks: Counter,
    /// max/mean per-worker fixpoint busy time, in thousandths (a gauge
    /// holds a `u64`; `1000` = perfectly balanced). Volatile.
    imbalance: Gauge,
    /// Storage operations that failed with transient I/O and entered
    /// the retry path (immediate, deferred, or probe). Volatile: the
    /// fault schedule is seeded, but which phase absorbs a fault can
    /// differ by shard configuration.
    store_retries: Counter,
    /// Stores moved into quarantine after exhausted retries. Volatile,
    /// like `store.retries`.
    store_quarantined: Counter,
}

impl SystemObs {
    pub(crate) fn new(registry: Registry) -> SystemObs {
        let authz_granted = registry.counter("authz.granted");
        let authz_denied = registry.counter("authz.denied");
        let pool_steals = registry.volatile_counter("pool.steals");
        let pool_tasks = registry.volatile_counter("pool.tasks");
        let imbalance = registry.volatile_gauge("quiesce.imbalance_ratio");
        let store_retries = registry.volatile_counter("store.retries");
        let store_quarantined = registry.volatile_counter("store.quarantined");
        SystemObs {
            gossip_prepare: registry.timing("quiesce.gossip_prepare_ns"),
            fixpoint: registry.timing("quiesce.fixpoint_ns"),
            placement: registry.timing("quiesce.placement_ns"),
            export_drain: registry.timing("quiesce.export_drain_ns"),
            gossip_send: registry.timing("quiesce.gossip_send_ns"),
            delivery: registry.timing("quiesce.delivery_ns"),
            group_commit: registry.timing("quiesce.group_commit_ns"),
            fault_recovery: registry.timing("quiesce.fault_recovery_ns"),
            step: registry.timing("quiesce.step_ns"),
            shard_fixpoints: Vec::new(),
            authz_granted,
            authz_denied,
            pool_steals,
            pool_tasks,
            imbalance,
            store_retries,
            store_quarantined,
            registry,
            journal: Journal::disabled(),
            timing: true,
        }
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn set_timing(&mut self, on: bool) {
        self.timing = on;
    }

    pub(crate) fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// A phase start mark, `None` when timing is off — so the disabled
    /// path pays one branch, not a clock read.
    #[inline]
    pub(crate) fn phase_timer(&self) -> Option<Instant> {
        self.timing.then(Instant::now)
    }

    /// Closes a span opened by [`SystemObs::phase_timer`].
    #[inline]
    pub(crate) fn record_phase(&self, phase: QuiescePhase, started: Option<Instant>) {
        let Some(started) = started else { return };
        let hist = match phase {
            QuiescePhase::GossipPrepare => &self.gossip_prepare,
            QuiescePhase::Fixpoint => &self.fixpoint,
            QuiescePhase::Placement => &self.placement,
            QuiescePhase::ExportDrain => &self.export_drain,
            QuiescePhase::GossipSend => &self.gossip_send,
            QuiescePhase::Delivery => &self.delivery,
            QuiescePhase::GroupCommit => &self.group_commit,
            QuiescePhase::FaultRecovery => &self.fault_recovery,
            QuiescePhase::Step => &self.step,
        };
        hist.record_duration(started.elapsed());
    }

    /// Counts one storage operation entering the retry path.
    pub(crate) fn count_retry(&self) {
        self.store_retries.inc();
    }

    /// Counts one store moving into quarantine.
    pub(crate) fn count_quarantine(&self) {
        self.store_quarantined.inc();
    }

    /// Records one shard's local-fixpoint duration for this step.
    pub(crate) fn record_shard_fixpoint(&mut self, shard: usize, elapsed: Duration) {
        if !self.timing {
            return;
        }
        while self.shard_fixpoints.len() <= shard {
            let i = self.shard_fixpoints.len();
            self.shard_fixpoints.push(
                self.registry
                    .timing(&format!("quiesce.fixpoint.shard{i}_ns")),
            );
        }
        self.shard_fixpoints[shard].record_duration(elapsed);
    }

    /// Folds one pool batch's steal/task counts into the volatile
    /// `pool.*` counters. A no-op for empty batches so pool-free runs
    /// register nothing.
    pub(crate) fn record_pool_batch(&self, steals: u64, tasks: usize) {
        if tasks == 0 {
            return;
        }
        self.pool_steals.add(steals);
        self.pool_tasks.add(tasks as u64);
    }

    /// Publishes `quiesce.imbalance_ratio`: max over mean of the
    /// per-worker cumulative fixpoint busy time, in thousandths (so
    /// `1000` means perfectly balanced workers and `3000` means the
    /// slowest worker carried 3x the average). Left untouched when
    /// phase timing is off or nothing has run.
    pub(crate) fn publish_imbalance(&self) {
        let sums: Vec<u64> = self.shard_fixpoints.iter().map(Histogram::sum).collect();
        let total: u64 = sums.iter().sum();
        if sums.is_empty() || total == 0 {
            return;
        }
        let max = *sums.iter().max().expect("non-empty");
        let mean = total as f64 / sums.len() as f64;
        let ratio = max as f64 / mean.max(1e-9);
        self.imbalance.set((ratio * 1000.0).round() as u64);
    }
}
