//! A deterministic in-memory network simulator.
//!
//! The paper's evaluation ran alice and bob on a physical cluster; this
//! reproduction exchanges the same messages through a simulated network
//! (see the substitution table in DESIGN.md). The simulator is a discrete
//! event queue with configurable latency jitter, loss, and duplication —
//! all driven by a seeded RNG so every test and benchmark is
//! reproducible.

use crate::node::NodeId;
use lbtrust_obs::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A message in flight: opaque payload bytes between two nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Serialized payload (the trust layer uses the canonical text of
    /// rules and tuples).
    pub payload: Vec<u8>,
}

/// Network behaviour knobs. The default is a perfect network (zero
/// latency spread, no loss) so unit tests are exact; integration tests
/// and benches turn the dials.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Minimum one-way latency in simulated microseconds.
    pub latency_min: u64,
    /// Maximum one-way latency (inclusive). Jitter reorders messages.
    pub latency_max: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is duplicated.
    pub duplicate_prob: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency_min: 1,
            latency_max: 1,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }
}

/// Counters the harness reports (message counts drive Figure 2's x-axis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages accepted by `send`.
    pub sent: usize,
    /// Messages handed to receivers.
    pub delivered: usize,
    /// Messages dropped by the loss model.
    pub dropped: usize,
    /// Extra deliveries from duplication.
    pub duplicated: usize,
    /// Total payload bytes accepted.
    pub bytes_sent: usize,
}

/// Live registry counters mirroring [`NetworkStats`], so the unified
/// observability snapshot reconciles against the ad-hoc struct.
#[derive(Clone, Debug)]
pub struct NetMetrics {
    /// Mirrors `NetworkStats.sent` (`net.sent`).
    pub sent: Counter,
    /// Mirrors `NetworkStats.delivered` (`net.delivered`).
    pub delivered: Counter,
    /// Mirrors `NetworkStats.dropped` (`net.dropped`).
    pub dropped: Counter,
    /// Mirrors `NetworkStats.duplicated` (`net.duplicated`).
    pub duplicated: Counter,
    /// Mirrors `NetworkStats.bytes_sent` (`net.bytes_sent`).
    pub bytes_sent: Counter,
}

impl NetMetrics {
    /// Counters registered under the `net.*` namespace of `registry`.
    pub fn registered_in(registry: &Registry) -> NetMetrics {
        NetMetrics {
            sent: registry.counter("net.sent"),
            delivered: registry.counter("net.delivered"),
            dropped: registry.counter("net.dropped"),
            duplicated: registry.counter("net.duplicated"),
            bytes_sent: registry.counter("net.bytes_sent"),
        }
    }
}

/// The discrete-event network simulator.
#[derive(Debug)]
pub struct SimNetwork {
    config: NetworkConfig,
    rng: StdRng,
    clock: u64,
    seq: u64,
    /// Min-heap on (delivery time, sequence) for deterministic order.
    queue: BinaryHeap<Reverse<(u64, u64, QueuedEnvelope)>>,
    stats: NetworkStats,
    metrics: Option<NetMetrics>,
}

/// Envelope wrapper ordered by its position in the tuple above; the
/// derive gives a total order (required by `BinaryHeap`) but delivery
/// order is decided by time and sequence alone because sequence numbers
/// are unique.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct QueuedEnvelope {
    from: NodeId,
    to: NodeId,
    payload: Vec<u8>,
}

impl SimNetwork {
    /// Creates a simulator with the given behaviour and RNG seed.
    pub fn new(config: NetworkConfig, seed: u64) -> SimNetwork {
        SimNetwork {
            config,
            rng: StdRng::seed_from_u64(seed),
            clock: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            stats: NetworkStats::default(),
            metrics: None,
        }
    }

    /// Mirrors every future stat change into `registry`'s `net.*`
    /// counters. Existing totals are seeded in so attaching mid-flight
    /// still reconciles with [`SimNetwork::stats`].
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let metrics = NetMetrics::registered_in(registry);
        metrics.sent.add(self.stats.sent as u64);
        metrics.delivered.add(self.stats.delivered as u64);
        metrics.dropped.add(self.stats.dropped as u64);
        metrics.duplicated.add(self.stats.duplicated as u64);
        metrics.bytes_sent.add(self.stats.bytes_sent as u64);
        self.metrics = Some(metrics);
    }

    /// A perfect network (no loss, fixed latency) with a fixed seed.
    pub fn perfect() -> SimNetwork {
        SimNetwork::new(NetworkConfig::default(), 0)
    }

    /// Current simulated time (microseconds).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Whether any message is still in flight.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Number of messages in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Sends `payload` from `from` to `to`, subject to the loss and
    /// duplication models. Returns `true` when the message was enqueued
    /// at least once.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>) -> bool {
        self.stats.sent += 1;
        self.stats.bytes_sent += payload.len();
        if let Some(m) = &self.metrics {
            m.sent.inc();
            m.bytes_sent.add(payload.len() as u64);
        }
        if self.config.drop_prob > 0.0 && self.rng.gen_bool(self.config.drop_prob) {
            self.stats.dropped += 1;
            if let Some(m) = &self.metrics {
                m.dropped.inc();
            }
            return false;
        }
        self.enqueue(from, to, payload.clone());
        if self.config.duplicate_prob > 0.0 && self.rng.gen_bool(self.config.duplicate_prob) {
            self.stats.duplicated += 1;
            if let Some(m) = &self.metrics {
                m.duplicated.inc();
            }
            self.enqueue(from, to, payload);
        }
        true
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>) {
        let latency = if self.config.latency_max > self.config.latency_min {
            self.rng
                .gen_range(self.config.latency_min..=self.config.latency_max)
        } else {
            self.config.latency_min
        };
        let deliver_at = self.clock + latency;
        self.seq += 1;
        self.queue.push(Reverse((
            deliver_at,
            self.seq,
            QueuedEnvelope { from, to, payload },
        )));
    }

    /// Delivers the next message in simulated-time order, advancing the
    /// clock to its delivery time.
    pub fn deliver_next(&mut self) -> Option<Envelope> {
        let Reverse((time, _, queued)) = self.queue.pop()?;
        self.clock = self.clock.max(time);
        self.stats.delivered += 1;
        if let Some(m) = &self.metrics {
            m.delivered.inc();
        }
        Some(Envelope {
            from: queued.from,
            to: queued.to,
            payload: queued.payload,
        })
    }

    /// Drains every in-flight message in delivery order.
    pub fn deliver_all(&mut self) -> Vec<Envelope> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(env) = self.deliver_next() {
            out.push(env);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(name: &str) -> NodeId {
        NodeId::new(name)
    }

    #[test]
    fn perfect_network_delivers_in_order() {
        let mut net = SimNetwork::perfect();
        net.send(n("a"), n("b"), b"one".to_vec());
        net.send(n("a"), n("b"), b"two".to_vec());
        let msgs = net.deliver_all();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].payload, b"one");
        assert_eq!(msgs[1].payload, b"two");
        assert_eq!(net.stats().delivered, 2);
        assert!(!net.has_pending());
    }

    #[test]
    fn clock_advances_with_latency() {
        let mut net = SimNetwork::new(
            NetworkConfig {
                latency_min: 50,
                latency_max: 50,
                ..NetworkConfig::default()
            },
            7,
        );
        net.send(n("a"), n("b"), b"x".to_vec());
        assert_eq!(net.now(), 0);
        net.deliver_next().unwrap();
        assert_eq!(net.now(), 50);
    }

    #[test]
    fn loss_model_drops() {
        let mut net = SimNetwork::new(
            NetworkConfig {
                drop_prob: 1.0,
                ..NetworkConfig::default()
            },
            1,
        );
        assert!(!net.send(n("a"), n("b"), b"x".to_vec()));
        assert_eq!(net.stats().dropped, 1);
        assert!(!net.has_pending());
    }

    #[test]
    fn duplication_model() {
        let mut net = SimNetwork::new(
            NetworkConfig {
                duplicate_prob: 1.0,
                ..NetworkConfig::default()
            },
            2,
        );
        net.send(n("a"), n("b"), b"x".to_vec());
        assert_eq!(net.deliver_all().len(), 2);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn jitter_reorders_deterministically() {
        let config = NetworkConfig {
            latency_min: 1,
            latency_max: 1000,
            ..NetworkConfig::default()
        };
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let mut net = SimNetwork::new(config, seed);
            for i in 0..20u8 {
                net.send(n("a"), n("b"), vec![i]);
            }
            net.deliver_all().into_iter().map(|e| e.payload).collect()
        };
        // Deterministic per seed.
        assert_eq!(run(42), run(42));
        // Some seed reorders (42 does; if jitter never reordered, the
        // simulation would be pointless).
        let order = run(42);
        let sorted: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i]).collect();
        assert_ne!(order, sorted);
        // All messages still arrive.
        let mut sorted_order = order.clone();
        sorted_order.sort();
        assert_eq!(sorted_order, sorted);
    }

    #[test]
    fn stats_track_bytes() {
        let mut net = SimNetwork::perfect();
        net.send(n("a"), n("b"), vec![0u8; 100]);
        net.send(n("b"), n("a"), vec![0u8; 50]);
        assert_eq!(net.stats().bytes_sent, 150);
        assert_eq!(net.stats().sent, 2);
    }
}
