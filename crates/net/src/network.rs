//! A deterministic in-memory network simulator.
//!
//! The paper's evaluation ran alice and bob on a physical cluster; this
//! reproduction exchanges the same messages through a simulated network
//! (see the substitution table in DESIGN.md). The simulator is a discrete
//! event queue with configurable latency jitter, loss, duplication,
//! directed partitions (blackholes with an optional heal step), bounded
//! random multi-step delay, and extra reorder jitter — all driven by a
//! seeded RNG so every test and benchmark is reproducible. The fault
//! knobs default to off and draw from the RNG only when enabled, so a
//! fault-free configuration replays byte-for-byte the same schedule it
//! did before the fault plane existed.

use crate::node::NodeId;
use lbtrust_obs::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A message in flight: opaque payload bytes between two nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Serialized payload (the trust layer uses the canonical text of
    /// rules and tuples).
    pub payload: Vec<u8>,
}

/// Network behaviour knobs. The default is a perfect network (zero
/// latency spread, no loss) so unit tests are exact; integration tests
/// and benches turn the dials.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Minimum one-way latency in simulated microseconds.
    pub latency_min: u64,
    /// Maximum one-way latency (inclusive). Jitter reorders messages.
    pub latency_max: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is duplicated.
    pub duplicate_prob: f64,
    /// Probability a message is held for a bounded number of steps
    /// (see [`SimNetwork::begin_step`]) before entering the delivery
    /// queue. Zero (the default) draws nothing from the RNG.
    pub delay_prob: f64,
    /// Upper bound (inclusive) on the random hold, in steps. A held
    /// message released at step `s` is delivered with fresh latency.
    pub delay_steps_max: u64,
    /// Probability an enqueued message gets extra reorder jitter on
    /// top of its latency draw. Zero (the default) draws nothing.
    pub reorder_prob: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency_min: 1,
            latency_max: 1,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay_steps_max: 0,
            reorder_prob: 0.0,
        }
    }
}

/// Counters the harness reports (message counts drive Figure 2's x-axis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages accepted by `send`.
    pub sent: usize,
    /// Messages handed to receivers.
    pub delivered: usize,
    /// Messages dropped by the loss model.
    pub dropped: usize,
    /// Extra deliveries from duplication.
    pub duplicated: usize,
    /// Messages swallowed by an active partition (never enqueued).
    pub blackholed: usize,
    /// Messages held by the delay model before delivery.
    pub delayed: usize,
    /// Messages given extra reorder jitter.
    pub reordered: usize,
    /// Total payload bytes accepted.
    pub bytes_sent: usize,
}

/// Live registry counters mirroring [`NetworkStats`], so the unified
/// observability snapshot reconciles against the ad-hoc struct.
#[derive(Clone, Debug)]
pub struct NetMetrics {
    /// Mirrors `NetworkStats.sent` (`net.sent`).
    pub sent: Counter,
    /// Mirrors `NetworkStats.delivered` (`net.delivered`).
    pub delivered: Counter,
    /// Mirrors `NetworkStats.dropped` (`net.dropped`).
    pub dropped: Counter,
    /// Mirrors `NetworkStats.duplicated` (`net.duplicated`).
    pub duplicated: Counter,
    /// Mirrors `NetworkStats.blackholed` (`net.blackholed`).
    pub blackholed: Counter,
    /// Mirrors `NetworkStats.delayed` (`net.delayed`).
    pub delayed: Counter,
    /// Mirrors `NetworkStats.reordered` (`net.reordered`).
    pub reordered: Counter,
    /// Mirrors `NetworkStats.bytes_sent` (`net.bytes_sent`).
    pub bytes_sent: Counter,
}

impl NetMetrics {
    /// Counters registered under the `net.*` namespace of `registry`.
    pub fn registered_in(registry: &Registry) -> NetMetrics {
        NetMetrics {
            sent: registry.counter("net.sent"),
            delivered: registry.counter("net.delivered"),
            dropped: registry.counter("net.dropped"),
            duplicated: registry.counter("net.duplicated"),
            blackholed: registry.counter("net.blackholed"),
            delayed: registry.counter("net.delayed"),
            reordered: registry.counter("net.reordered"),
            bytes_sent: registry.counter("net.bytes_sent"),
        }
    }
}

/// The discrete-event network simulator.
#[derive(Debug)]
pub struct SimNetwork {
    config: NetworkConfig,
    rng: StdRng,
    clock: u64,
    seq: u64,
    /// Min-heap on (delivery time, sequence) for deterministic order.
    queue: BinaryHeap<Reverse<(u64, u64, QueuedEnvelope)>>,
    /// Step counter advanced by [`SimNetwork::begin_step`]; drives
    /// partition healing and delayed-message release.
    step: u64,
    /// Directed blackholes: `(from, to)` → heal at step (`None` =
    /// until healed explicitly).
    partitions: HashMap<(NodeId, NodeId), Option<u64>>,
    /// Messages held by the delay model, min-heap on (release step,
    /// sequence). Released into `queue` by `begin_step`.
    held: BinaryHeap<Reverse<(u64, u64, QueuedEnvelope)>>,
    stats: NetworkStats,
    metrics: Option<NetMetrics>,
}

/// Envelope wrapper ordered by its position in the tuple above; the
/// derive gives a total order (required by `BinaryHeap`) but delivery
/// order is decided by time and sequence alone because sequence numbers
/// are unique.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct QueuedEnvelope {
    from: NodeId,
    to: NodeId,
    payload: Vec<u8>,
}

impl SimNetwork {
    /// Creates a simulator with the given behaviour and RNG seed.
    pub fn new(config: NetworkConfig, seed: u64) -> SimNetwork {
        SimNetwork {
            config,
            rng: StdRng::seed_from_u64(seed),
            clock: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            step: 0,
            partitions: HashMap::new(),
            held: BinaryHeap::new(),
            stats: NetworkStats::default(),
            metrics: None,
        }
    }

    /// Mirrors every future stat change into `registry`'s `net.*`
    /// counters. Existing totals are seeded in so attaching mid-flight
    /// still reconciles with [`SimNetwork::stats`].
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let metrics = NetMetrics::registered_in(registry);
        metrics.sent.add(self.stats.sent as u64);
        metrics.delivered.add(self.stats.delivered as u64);
        metrics.dropped.add(self.stats.dropped as u64);
        metrics.duplicated.add(self.stats.duplicated as u64);
        metrics.blackholed.add(self.stats.blackholed as u64);
        metrics.delayed.add(self.stats.delayed as u64);
        metrics.reordered.add(self.stats.reordered as u64);
        metrics.bytes_sent.add(self.stats.bytes_sent as u64);
        self.metrics = Some(metrics);
    }

    /// A perfect network (no loss, fixed latency) with a fixed seed.
    pub fn perfect() -> SimNetwork {
        SimNetwork::new(NetworkConfig::default(), 0)
    }

    /// Current simulated time (microseconds).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Whether any message is still in flight (including messages the
    /// delay model is holding for a future step).
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty() || !self.held.is_empty()
    }

    /// Number of messages in flight (held ones included).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.held.len()
    }

    /// The current step (advanced by [`SimNetwork::begin_step`]).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Advances the step counter, heals partitions whose heal step is
    /// due, and releases delay-held messages whose step arrived into
    /// the delivery queue (with a fresh latency draw). The runtime
    /// calls this once per quiescence step; simulations without
    /// partitions or delays are unaffected (no RNG draws).
    pub fn begin_step(&mut self) {
        self.step += 1;
        let step = self.step;
        self.partitions
            .retain(|_, heal_at| heal_at.map(|h| h > step).unwrap_or(true));
        while let Some(Reverse((release, _, _))) = self.held.peek() {
            if *release > step {
                break;
            }
            let Reverse((_, _, queued)) = self.held.pop().expect("peeked entry exists");
            self.enqueue(queued.from, queued.to, queued.payload);
        }
    }

    /// Blackholes every `from` → `to` message until healed (the
    /// reverse direction keeps flowing; partition both ways for a full
    /// cut). `heal_at_step` of `None` means until
    /// [`SimNetwork::heal_link`] / [`SimNetwork::heal_all_partitions`].
    pub fn partition(&mut self, from: NodeId, to: NodeId, heal_at_step: Option<u64>) {
        self.partitions.insert((from, to), heal_at_step);
    }

    /// Removes a directed blackhole (no-op when absent).
    pub fn heal_link(&mut self, from: NodeId, to: NodeId) {
        self.partitions.remove(&(from, to));
    }

    /// Removes every active partition.
    pub fn heal_all_partitions(&mut self) {
        self.partitions.clear();
    }

    /// Whether `from` → `to` is currently blackholed.
    pub fn is_partitioned(&self, from: NodeId, to: NodeId) -> bool {
        self.partitions.contains_key(&(from, to))
    }

    /// Number of directed blackholes currently active.
    pub fn active_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Sends `payload` from `from` to `to`, subject to the loss and
    /// duplication models. Returns `true` when the message was enqueued
    /// at least once.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>) -> bool {
        self.stats.sent += 1;
        self.stats.bytes_sent += payload.len();
        if let Some(m) = &self.metrics {
            m.sent.inc();
            m.bytes_sent.add(payload.len() as u64);
        }
        if self.partitions.contains_key(&(from, to)) {
            self.stats.blackholed += 1;
            if let Some(m) = &self.metrics {
                m.blackholed.inc();
            }
            return false;
        }
        if self.config.drop_prob > 0.0 && self.rng.gen_bool(self.config.drop_prob) {
            self.stats.dropped += 1;
            if let Some(m) = &self.metrics {
                m.dropped.inc();
            }
            return false;
        }
        if self.config.delay_prob > 0.0 && self.rng.gen_bool(self.config.delay_prob) {
            self.stats.delayed += 1;
            if let Some(m) = &self.metrics {
                m.delayed.inc();
            }
            let hold = self.rng.gen_range(1..=self.config.delay_steps_max.max(1));
            self.seq += 1;
            self.held.push(Reverse((
                self.step + hold,
                self.seq,
                QueuedEnvelope { from, to, payload },
            )));
            return true;
        }
        self.enqueue(from, to, payload.clone());
        if self.config.duplicate_prob > 0.0 && self.rng.gen_bool(self.config.duplicate_prob) {
            self.stats.duplicated += 1;
            if let Some(m) = &self.metrics {
                m.duplicated.inc();
            }
            self.enqueue(from, to, payload);
        }
        true
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>) {
        let latency = if self.config.latency_max > self.config.latency_min {
            self.rng
                .gen_range(self.config.latency_min..=self.config.latency_max)
        } else {
            self.config.latency_min
        };
        let mut deliver_at = self.clock + latency;
        if self.config.reorder_prob > 0.0 && self.rng.gen_bool(self.config.reorder_prob) {
            self.stats.reordered += 1;
            if let Some(m) = &self.metrics {
                m.reordered.inc();
            }
            // Push the message past its cohort: jitter bounded by the
            // configured latency spread (at least 4 µs so a fixed-
            // latency config still reorders).
            let spread = self.config.latency_max.max(4);
            deliver_at += self.rng.gen_range(1..=spread);
        }
        self.seq += 1;
        self.queue.push(Reverse((
            deliver_at,
            self.seq,
            QueuedEnvelope { from, to, payload },
        )));
    }

    /// Delivers the next message in simulated-time order, advancing the
    /// clock to its delivery time.
    pub fn deliver_next(&mut self) -> Option<Envelope> {
        let Reverse((time, _, queued)) = self.queue.pop()?;
        self.clock = self.clock.max(time);
        self.stats.delivered += 1;
        if let Some(m) = &self.metrics {
            m.delivered.inc();
        }
        Some(Envelope {
            from: queued.from,
            to: queued.to,
            payload: queued.payload,
        })
    }

    /// Drains every in-flight message in delivery order.
    pub fn deliver_all(&mut self) -> Vec<Envelope> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(env) = self.deliver_next() {
            out.push(env);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(name: &str) -> NodeId {
        NodeId::new(name)
    }

    #[test]
    fn perfect_network_delivers_in_order() {
        let mut net = SimNetwork::perfect();
        net.send(n("a"), n("b"), b"one".to_vec());
        net.send(n("a"), n("b"), b"two".to_vec());
        let msgs = net.deliver_all();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].payload, b"one");
        assert_eq!(msgs[1].payload, b"two");
        assert_eq!(net.stats().delivered, 2);
        assert!(!net.has_pending());
    }

    #[test]
    fn clock_advances_with_latency() {
        let mut net = SimNetwork::new(
            NetworkConfig {
                latency_min: 50,
                latency_max: 50,
                ..NetworkConfig::default()
            },
            7,
        );
        net.send(n("a"), n("b"), b"x".to_vec());
        assert_eq!(net.now(), 0);
        net.deliver_next().unwrap();
        assert_eq!(net.now(), 50);
    }

    #[test]
    fn loss_model_drops() {
        let mut net = SimNetwork::new(
            NetworkConfig {
                drop_prob: 1.0,
                ..NetworkConfig::default()
            },
            1,
        );
        assert!(!net.send(n("a"), n("b"), b"x".to_vec()));
        assert_eq!(net.stats().dropped, 1);
        assert!(!net.has_pending());
    }

    #[test]
    fn duplication_model() {
        let mut net = SimNetwork::new(
            NetworkConfig {
                duplicate_prob: 1.0,
                ..NetworkConfig::default()
            },
            2,
        );
        net.send(n("a"), n("b"), b"x".to_vec());
        assert_eq!(net.deliver_all().len(), 2);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn jitter_reorders_deterministically() {
        let config = NetworkConfig {
            latency_min: 1,
            latency_max: 1000,
            ..NetworkConfig::default()
        };
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let mut net = SimNetwork::new(config, seed);
            for i in 0..20u8 {
                net.send(n("a"), n("b"), vec![i]);
            }
            net.deliver_all().into_iter().map(|e| e.payload).collect()
        };
        // Deterministic per seed.
        assert_eq!(run(42), run(42));
        // Some seed reorders (42 does; if jitter never reordered, the
        // simulation would be pointless).
        let order = run(42);
        let sorted: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i]).collect();
        assert_ne!(order, sorted);
        // All messages still arrive.
        let mut sorted_order = order.clone();
        sorted_order.sort();
        assert_eq!(sorted_order, sorted);
    }

    #[test]
    fn partitions_blackhole_directionally_and_heal_by_step() {
        let mut net = SimNetwork::perfect();
        net.partition(n("a"), n("b"), Some(2));
        assert!(net.is_partitioned(n("a"), n("b")));
        assert!(!net.send(n("a"), n("b"), b"eaten".to_vec()));
        assert!(
            net.send(n("b"), n("a"), b"reverse ok".to_vec()),
            "directed cut"
        );
        net.begin_step(); // step 1: still cut
        assert!(!net.send(n("a"), n("b"), b"still eaten".to_vec()));
        net.begin_step(); // step 2: heal due
        net.begin_step(); // step 3: healed
        assert!(net.send(n("a"), n("b"), b"flows".to_vec()));
        assert_eq!(net.stats().blackholed, 2);
        assert_eq!(net.active_partitions(), 0);
        // sent counts blackholed attempts; delivered excludes them.
        let delivered = net.deliver_all().len();
        let s = net.stats();
        assert_eq!(delivered, s.sent - s.dropped - s.blackholed);
    }

    #[test]
    fn manual_heal_reopens_link() {
        let mut net = SimNetwork::perfect();
        net.partition(n("a"), n("b"), None);
        assert!(!net.send(n("a"), n("b"), b"x".to_vec()));
        net.heal_all_partitions();
        assert!(net.send(n("a"), n("b"), b"x".to_vec()));
    }

    #[test]
    fn delay_model_holds_until_step_then_delivers() {
        let mut net = SimNetwork::new(
            NetworkConfig {
                delay_prob: 1.0,
                delay_steps_max: 3,
                ..NetworkConfig::default()
            },
            9,
        );
        net.send(n("a"), n("b"), b"late".to_vec());
        assert_eq!(net.stats().delayed, 1);
        assert!(net.has_pending(), "held messages are still in flight");
        assert!(net.deliver_all().is_empty(), "nothing deliverable yet");
        for _ in 0..3 {
            net.begin_step();
        }
        let msgs = net.deliver_all();
        assert_eq!(msgs.len(), 1, "released by its step at the latest");
        assert_eq!(net.stats().delivered, 1);
        assert!(!net.has_pending());
    }

    #[test]
    fn reorder_jitter_counts_and_keeps_every_message() {
        let config = NetworkConfig {
            reorder_prob: 1.0,
            ..NetworkConfig::default()
        };
        let mut net = SimNetwork::new(config, 3);
        for i in 0..10u8 {
            net.send(n("a"), n("b"), vec![i]);
        }
        let msgs = net.deliver_all();
        assert_eq!(msgs.len(), 10);
        assert_eq!(net.stats().reordered, 10);
        let mut seen: Vec<Vec<u8>> = msgs.into_iter().map(|e| e.payload).collect();
        seen.sort();
        assert_eq!(seen, (0..10u8).map(|i| vec![i]).collect::<Vec<_>>());
    }

    #[test]
    fn fault_free_config_schedule_is_unchanged_by_begin_step() {
        // begin_step with no partitions/delays must not perturb the
        // RNG stream: the same sends produce the same delivery order
        // whether or not steps are announced.
        let config = NetworkConfig {
            latency_min: 1,
            latency_max: 1000,
            drop_prob: 0.2,
            ..NetworkConfig::default()
        };
        let run = |announce: bool| -> Vec<Vec<u8>> {
            let mut net = SimNetwork::new(config, 11);
            for i in 0..30u8 {
                if announce {
                    net.begin_step();
                }
                net.send(n("a"), n("b"), vec![i]);
            }
            net.deliver_all().into_iter().map(|e| e.payload).collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stats_track_bytes() {
        let mut net = SimNetwork::perfect();
        net.send(n("a"), n("b"), vec![0u8; 100]);
        net.send(n("b"), n("a"), vec![0u8; 50]);
        assert_eq!(net.stats().bytes_sent, 150);
        assert_eq!(net.stats().sent, 2);
    }
}
