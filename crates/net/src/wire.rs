//! Wire encoding for rules and tuples.
//!
//! LBTrust principals exchange *rules* (facts are bodyless rules, §4.1 of
//! the paper). The wire format is the canonical text of the Datalog
//! dialect itself: deterministic, self-describing, and — crucially for
//! the authentication schemes — the exact byte string over which
//! signatures and MACs are computed. A message is one `export` tuple:
//! `export[<to>](<from>, <rule-quote>, <signature-bytes>)`.

use lbtrust_crypto::crc32::crc32;
use lbtrust_crypto::sha256::Sha256;
use lbtrust_datalog::ast::{Atom, Rule, Term};
use lbtrust_datalog::{parse_rule, Symbol, Value};
use std::fmt;
use std::sync::Arc;

/// A 32-byte content address over canonical wire bytes.
pub type WireDigest = [u8; 32];

/// SHA-256 content digest of canonical wire bytes — the key under which
/// the certificate store addresses verified credentials.
pub fn digest_bytes(bytes: &[u8]) -> WireDigest {
    Sha256::digest(bytes)
}

/// Lowercase hex rendering of a digest (or any byte string).
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize]);
        out.push(DIGITS[(b & 0xf) as usize]);
    }
    String::from_utf8(out).expect("hex digits are ascii")
}

/// Parses lowercase/uppercase hex back into bytes.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

// ---- record framing (durable logs) ----------------------------------------
//
// The certificate store's segment log reuses the canonical wire
// encoding for its payloads; the framing below adds what a durable,
// append-only file needs on top of it: a length prefix so records can
// be scanned without parsing, and a CRC-32 so a torn write or flipped
// bit at the tail is detected and replay stops cleanly at the last
// valid record.
//
// Layout of one frame (all integers little-endian):
//
// ```text
// [len: u32] [kind: u8] [payload: len-1 bytes] [crc32: u32]
// ```
//
// `len` counts the kind byte plus the payload; the CRC covers the same
// span (kind + payload).

/// Bytes of framing overhead per record (`len` prefix + CRC suffix).
pub const FRAME_OVERHEAD: usize = 8;

/// Upper bound on one frame's body (kind + payload); a corrupt length
/// prefix larger than this is treated as end-of-log rather than an
/// instruction to scan gigabytes.
pub const MAX_FRAME_BODY: usize = 16 * 1024 * 1024;

/// Frames one record: length prefix, kind tag, payload, CRC-32 trailer.
pub fn frame_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let body_len = payload.len() + 1;
    let mut out = Vec::with_capacity(body_len + FRAME_OVERHEAD);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&out[4..]).to_le_bytes());
    out
}

/// Reads the frame starting at `offset`, returning `(kind, payload,
/// next_offset)`. Returns `None` when the buffer ends (cleanly or with
/// a truncated frame), the length prefix is implausible, or the CRC
/// does not match — replay treats all of these as end-of-log.
pub fn read_frame(buf: &[u8], offset: usize) -> Option<(u8, &[u8], usize)> {
    let rest = buf.get(offset..)?;
    if rest.len() < 4 {
        return None;
    }
    let body_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
    if body_len == 0 || body_len > MAX_FRAME_BODY {
        return None;
    }
    let body = rest.get(4..4 + body_len)?;
    let crc_bytes = rest.get(4 + body_len..4 + body_len + 4)?;
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return None;
    }
    Some((body[0], &body[1..], offset + 4 + body_len + 4))
}

// ---- whole-file metadata frames (manifests, checkpoints) -------------------
//
// The segmented certificate log keeps small metadata files beside its
// record segments: a MANIFEST naming the live segment set and the
// latest checkpoint, and an audit segment of folded lifecycle entries.
// These reuse the record framing above, but with a stricter contract —
// a metadata file is exactly one frame, so a torn or trailing-garbage
// file is detected as a whole rather than salvaged record-by-record.

/// Frame kind of a segment-set manifest file.
pub const META_MANIFEST: u8 = 0xA0;
/// Frame kind of a checkpoint header (inside a checkpoint record's
/// nested frame sequence).
pub const META_CHECKPOINT: u8 = 0xA1;

/// Frames a whole metadata file: one CRC-checked record that must span
/// the file exactly (see [`read_meta_file`]).
pub fn frame_meta_file(kind: u8, payload: &[u8]) -> Vec<u8> {
    frame_record(kind, payload)
}

/// Reads a metadata file produced by [`frame_meta_file`]: the buffer
/// must hold exactly one intact frame of the expected `kind`. Any
/// deviation — wrong kind, bad CRC, trailing bytes — yields `None`, so
/// a half-written manifest is rejected as a whole and the caller falls
/// back to the previous generation.
pub fn read_meta_file(kind: u8, bytes: &[u8]) -> Option<&[u8]> {
    let (k, payload, next) = read_frame(bytes, 0)?;
    (k == kind && next == bytes.len()).then_some(payload)
}

/// Scans a buffer of concatenated frames (a checkpoint record's nested
/// sequence), yielding `(kind, payload)` pairs. Returns `None` unless
/// every byte is covered by intact frames — a checkpoint is trusted
/// state, so partial decode is refused rather than salvaged.
pub fn read_frame_sequence(bytes: &[u8]) -> Option<Vec<(u8, &[u8])>> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let (kind, payload, next) = read_frame(bytes, offset)?;
        out.push((kind, payload));
        offset = next;
    }
    Some(out)
}

/// The byte string a revocation signature covers: issuer name plus the
/// hex digest of the certificate being withdrawn.
pub fn revoke_signing_bytes(issuer: Symbol, digest: &WireDigest) -> Vec<u8> {
    format!("lbtrust-revoke:{issuer}:{}", to_hex(digest)).into_bytes()
}

/// Wire decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Description.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// A decoded LBTrust message: an exported rule with authentication data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireMessage {
    /// The sending principal.
    pub from: Symbol,
    /// The receiving principal.
    pub to: Symbol,
    /// The communicated rule.
    pub rule: Arc<Rule>,
    /// Authentication bytes (empty for plaintext transfer).
    pub auth: Vec<u8>,
}

/// A revocation notice on the wire: `from` withdraws the certificate
/// addressed by `digest`; `auth` is `from`'s signature over
/// [`revoke_signing_bytes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevokeMessage {
    /// The revoking (issuing) principal.
    pub from: Symbol,
    /// The receiving principal.
    pub to: Symbol,
    /// Content address of the certificate being withdrawn.
    pub digest: WireDigest,
    /// Signature over [`revoke_signing_bytes`].
    pub auth: Vec<u8>,
}

/// An anti-entropy revocation-summary advertisement: `from` tells `to`
/// a compact fingerprint of every revocation it holds signed by
/// `issuer`. Fingerprints are opaque at the wire level — receivers
/// only ever compare them for equality (a mismatch triggers a
/// [`RevPullMessage`]), so no authentication is carried: a forged
/// summary can at worst provoke a redundant pull or suppress one
/// round's repair, and the next round re-advertises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevSummaryMessage {
    /// The advertising principal.
    pub from: Symbol,
    /// The receiving principal.
    pub to: Symbol,
    /// Whose revocations the fingerprint covers (the signer).
    pub issuer: Symbol,
    /// Digest-set fingerprint (hex), compared only for equality.
    pub fingerprint: String,
}

/// An anti-entropy pull request: `from` asks `to` to send every signed
/// revocation it holds issued by `issuer` (the responder replies with
/// [`WirePacket::RevGossip`] frames, which carry the issuer's own
/// signatures — the pull itself needs no authentication).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevPullMessage {
    /// The requesting principal.
    pub from: Symbol,
    /// The responding principal.
    pub to: Symbol,
    /// Whose revocations are requested.
    pub issuer: Symbol,
}

/// Everything that travels between principals: exported rules and
/// revocation notices share one self-describing canonical-text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WirePacket {
    /// An exported, authenticated rule (`export[to](from, R, S)`).
    Export(WireMessage),
    /// A certificate revocation (`revoke[to](from, "digest-hex", S)`).
    Revoke(RevokeMessage),
    /// A revocation-summary advertisement
    /// (`revsummary[to](from, issuer, "fp-hex")`).
    RevSummary(RevSummaryMessage),
    /// A pull request for an issuer's signed revocations
    /// (`revpull[to](from, issuer)`).
    RevPull(RevPullMessage),
    /// A revocation object relayed by the gossip repair layer
    /// (`revgossip[to](from, "digest-hex", S)`). Same payload as
    /// [`WirePacket::Revoke`], but receivers apply it tolerantly: a
    /// relayed object whose signer is not the target certificate's
    /// issuer is remembered as inert rather than rejected, so
    /// anti-entropy converges on the full set of revocation objects.
    RevGossip(RevokeMessage),
}

/// The canonical byte string of a rule — what gets signed/MACed.
pub fn rule_bytes(rule: &Rule) -> Vec<u8> {
    rule.to_string().into_bytes()
}

/// Encodes a message as the canonical text of an `export` fact.
pub fn encode(msg: &WireMessage) -> Vec<u8> {
    let fact = Rule::fact(Atom {
        pred: lbtrust_datalog::ast::PredRef::Name(Symbol::intern("export")),
        key_args: vec![Term::Val(Value::Sym(msg.to))],
        args: vec![
            Term::Val(Value::Sym(msg.from)),
            Term::Val(Value::Quote(msg.rule.clone())),
            Term::Val(Value::bytes(&msg.auth)),
        ],
    });
    fact.to_string().into_bytes()
}

/// Encodes a revocation payload under the given predicate (`revoke`
/// for the eager broadcast, `revgossip` for the anti-entropy relay —
/// identical layout, decoded by the same [`revoke_from_atom`]).
fn encode_revoke_as(pred: &str, msg: &RevokeMessage) -> Vec<u8> {
    let fact = Rule::fact(Atom {
        pred: lbtrust_datalog::ast::PredRef::Name(Symbol::intern(pred)),
        key_args: vec![Term::Val(Value::Sym(msg.to))],
        args: vec![
            Term::Val(Value::Sym(msg.from)),
            Term::Val(Value::str(&to_hex(&msg.digest))),
            Term::Val(Value::bytes(&msg.auth)),
        ],
    });
    fact.to_string().into_bytes()
}

/// Encodes a revocation notice as the canonical text of a `revoke` fact.
pub fn encode_revoke(msg: &RevokeMessage) -> Vec<u8> {
    encode_revoke_as("revoke", msg)
}

/// Encodes a summary advertisement as the canonical text of a
/// `revsummary` fact.
pub fn encode_revsummary(msg: &RevSummaryMessage) -> Vec<u8> {
    let fact = Rule::fact(Atom {
        pred: lbtrust_datalog::ast::PredRef::Name(Symbol::intern("revsummary")),
        key_args: vec![Term::Val(Value::Sym(msg.to))],
        args: vec![
            Term::Val(Value::Sym(msg.from)),
            Term::Val(Value::Sym(msg.issuer)),
            Term::Val(Value::str(&msg.fingerprint)),
        ],
    });
    fact.to_string().into_bytes()
}

/// Encodes a pull request as the canonical text of a `revpull` fact.
pub fn encode_revpull(msg: &RevPullMessage) -> Vec<u8> {
    let fact = Rule::fact(Atom {
        pred: lbtrust_datalog::ast::PredRef::Name(Symbol::intern("revpull")),
        key_args: vec![Term::Val(Value::Sym(msg.to))],
        args: vec![
            Term::Val(Value::Sym(msg.from)),
            Term::Val(Value::Sym(msg.issuer)),
        ],
    });
    fact.to_string().into_bytes()
}

/// Encodes a gossiped revocation object as a `revgossip` fact (same
/// argument structure as `revoke`).
pub fn encode_revgossip(msg: &RevokeMessage) -> Vec<u8> {
    encode_revoke_as("revgossip", msg)
}

/// Encodes either packet variant.
pub fn encode_packet(packet: &WirePacket) -> Vec<u8> {
    match packet {
        WirePacket::Export(m) => encode(m),
        WirePacket::Revoke(m) => encode_revoke(m),
        WirePacket::RevSummary(m) => encode_revsummary(m),
        WirePacket::RevPull(m) => encode_revpull(m),
        WirePacket::RevGossip(m) => encode_revgossip(m),
    }
}

/// Decodes a packet produced by [`encode_packet`] (or plain [`encode`]),
/// dispatching on the fact's predicate.
pub fn decode_packet(bytes: &[u8]) -> Result<WirePacket, WireError> {
    let text = std::str::from_utf8(bytes).map_err(|e| WireError {
        message: format!("invalid utf-8: {e}"),
    })?;
    let fact = parse_rule(text).map_err(|e| WireError {
        message: format!("unparseable message: {e}"),
    })?;
    if fact.heads.len() != 1 || !fact.body.is_empty() {
        return Err(WireError {
            message: "message is not a single fact".into(),
        });
    }
    let head = &fact.heads[0];
    match head.pred.name().map(|s| s.as_str()) {
        Some("export") => Ok(WirePacket::Export(export_from_atom(head)?)),
        Some("revoke") => Ok(WirePacket::Revoke(revoke_from_atom(head)?)),
        Some("revsummary") => Ok(WirePacket::RevSummary(revsummary_from_atom(head)?)),
        Some("revpull") => Ok(WirePacket::RevPull(revpull_from_atom(head)?)),
        Some("revgossip") => Ok(WirePacket::RevGossip(revoke_from_atom(head)?)),
        _ => Err(WireError {
            message: format!("unexpected predicate in '{head}'"),
        }),
    }
}

/// Decodes a `revsummary[to](from, issuer, "fp-hex")` fact.
fn revsummary_from_atom(head: &Atom) -> Result<RevSummaryMessage, WireError> {
    match (head.key_args.as_slice(), head.args.as_slice()) {
        (
            [Term::Val(Value::Sym(to))],
            [Term::Val(Value::Sym(from)), Term::Val(Value::Sym(issuer)), Term::Val(Value::Str(fp))],
        ) => Ok(RevSummaryMessage {
            from: *from,
            to: *to,
            issuer: *issuer,
            fingerprint: fp.to_string(),
        }),
        _ => Err(WireError {
            message: format!("malformed revsummary fact '{head}'"),
        }),
    }
}

/// Decodes a `revpull[to](from, issuer)` fact.
fn revpull_from_atom(head: &Atom) -> Result<RevPullMessage, WireError> {
    match (head.key_args.as_slice(), head.args.as_slice()) {
        (
            [Term::Val(Value::Sym(to))],
            [Term::Val(Value::Sym(from)), Term::Val(Value::Sym(issuer))],
        ) => Ok(RevPullMessage {
            from: *from,
            to: *to,
            issuer: *issuer,
        }),
        _ => Err(WireError {
            message: format!("malformed revpull fact '{head}'"),
        }),
    }
}

/// Decodes a `revoke[to](from, "digest-hex", auth)` fact.
fn revoke_from_atom(head: &Atom) -> Result<RevokeMessage, WireError> {
    let malformed = || WireError {
        message: format!("malformed revoke fact '{head}'"),
    };
    match (head.key_args.as_slice(), head.args.as_slice()) {
        (
            [Term::Val(Value::Sym(to))],
            [Term::Val(Value::Sym(from)), Term::Val(Value::Str(hex)), Term::Val(Value::Bytes(auth))],
        ) => {
            let raw = from_hex(hex).ok_or_else(malformed)?;
            let digest: WireDigest = raw.try_into().map_err(|_| malformed())?;
            Ok(RevokeMessage {
                from: *from,
                to: *to,
                digest,
                auth: auth.to_vec(),
            })
        }
        _ => Err(malformed()),
    }
}

/// Decodes a message produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<WireMessage, WireError> {
    let text = std::str::from_utf8(bytes).map_err(|e| WireError {
        message: format!("invalid utf-8: {e}"),
    })?;
    let fact = parse_rule(text).map_err(|e| WireError {
        message: format!("unparseable message: {e}"),
    })?;
    if fact.heads.len() != 1 || !fact.body.is_empty() {
        return Err(WireError {
            message: "message is not a single fact".into(),
        });
    }
    let head = &fact.heads[0];
    if head.pred.name().map(|s| s.as_str()) != Some("export") {
        return Err(WireError {
            message: format!("unexpected predicate in '{head}'"),
        });
    }
    export_from_atom(head)
}

/// Decodes the argument structure of an `export` fact.
fn export_from_atom(head: &Atom) -> Result<WireMessage, WireError> {
    // The parser yields `Term::Quote` for quote literals; a programmatic
    // encode uses `Term::Val(Value::Quote)`. Accept both.
    fn as_quote(term: &Term) -> Option<Arc<Rule>> {
        match term {
            Term::Quote(r) => Some(r.clone()),
            Term::Val(Value::Quote(r)) => Some(r.clone()),
            _ => None,
        }
    }
    let (to, from, rule, auth) = match (head.key_args.as_slice(), head.args.as_slice()) {
        (
            [Term::Val(Value::Sym(to))],
            [Term::Val(Value::Sym(from)), quote, Term::Val(Value::Bytes(auth))],
        ) => {
            let Some(rule) = as_quote(quote) else {
                return Err(WireError {
                    message: format!("expected a quoted rule in '{head}'"),
                });
            };
            (*to, *from, rule, auth.to_vec())
        }
        _ => {
            return Err(WireError {
                message: format!("malformed export fact '{head}'"),
            })
        }
    };
    Ok(WireMessage {
        from,
        to,
        rule,
        auth,
    })
}

#[cfg(test)]
mod frame_tests {
    use super::*;

    #[test]
    fn frame_roundtrip_single_and_sequence() {
        let buf = frame_record(1, b"hello");
        let (kind, payload, next) = read_frame(&buf, 0).unwrap();
        assert_eq!(kind, 1);
        assert_eq!(payload, b"hello");
        assert_eq!(next, buf.len());

        let mut log = Vec::new();
        for (k, p) in [(1u8, &b"alpha"[..]), (2, b""), (3, b"gamma")] {
            log.extend_from_slice(&frame_record(k, p));
        }
        let mut offset = 0;
        let mut seen = Vec::new();
        while let Some((k, p, next)) = read_frame(&log, offset) {
            seen.push((k, p.to_vec()));
            offset = next;
        }
        assert_eq!(offset, log.len());
        assert_eq!(
            seen,
            vec![
                (1, b"alpha".to_vec()),
                (2, Vec::new()),
                (3, b"gamma".to_vec())
            ]
        );
    }

    #[test]
    fn truncated_tail_stops_cleanly() {
        let mut log = frame_record(1, b"first");
        let keep = log.len();
        log.extend_from_slice(&frame_record(2, b"second"));
        log.truncate(keep + 5); // tear the second frame mid-body
        let (_, payload, next) = read_frame(&log, 0).unwrap();
        assert_eq!(payload, b"first");
        assert!(
            read_frame(&log, next).is_none(),
            "torn frame must not parse"
        );
    }

    #[test]
    fn corrupted_frame_fails_crc() {
        let mut buf = frame_record(7, b"payload-bytes");
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        assert!(read_frame(&buf, 0).is_none());
    }

    #[test]
    fn meta_file_roundtrip_and_rejects() {
        let file = frame_meta_file(META_MANIFEST, b"segments:1,2\n");
        assert_eq!(
            read_meta_file(META_MANIFEST, &file).unwrap(),
            b"segments:1,2\n"
        );
        // Wrong kind.
        assert!(read_meta_file(META_CHECKPOINT, &file).is_none());
        // Trailing garbage after the frame: the whole file is rejected.
        let mut trailing = file.clone();
        trailing.push(0x00);
        assert!(read_meta_file(META_MANIFEST, &trailing).is_none());
        // A torn prefix is rejected too.
        assert!(read_meta_file(META_MANIFEST, &file[..file.len() - 2]).is_none());
        // A flipped bit fails the CRC.
        let mut corrupt = file.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x08;
        assert!(read_meta_file(META_MANIFEST, &corrupt).is_none());
    }

    #[test]
    fn frame_sequence_requires_full_coverage() {
        let mut buf = frame_record(1, b"a");
        buf.extend_from_slice(&frame_record(2, b"bb"));
        let frames = read_frame_sequence(&buf).unwrap();
        assert_eq!(frames, vec![(1u8, &b"a"[..]), (2u8, &b"bb"[..])]);
        assert_eq!(read_frame_sequence(b"").unwrap(), vec![]);
        // A torn tail poisons the whole sequence.
        let torn = &buf[..buf.len() - 3];
        assert!(read_frame_sequence(torn).is_none());
    }

    #[test]
    fn implausible_length_prefix_rejected() {
        let mut buf = frame_record(1, b"x");
        buf[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&buf, 0).is_none());
        assert!(read_frame(&[0, 0, 0], 0).is_none(), "short header");
    }
}

#[cfg(test)]
mod packet_tests {
    use super::*;

    #[test]
    fn revoke_roundtrip() {
        let m = RevokeMessage {
            from: Symbol::intern("alice"),
            to: Symbol::intern("bob"),
            digest: digest_bytes(b"some certificate"),
            auth: vec![9, 8, 7],
        };
        let decoded = decode_packet(&encode_revoke(&m)).unwrap();
        assert_eq!(decoded, WirePacket::Revoke(m));
    }

    #[test]
    fn revsummary_and_revpull_roundtrip() {
        let summary = RevSummaryMessage {
            from: Symbol::intern("alice"),
            to: Symbol::intern("bob"),
            issuer: Symbol::intern("carol"),
            fingerprint: to_hex(&digest_bytes(b"revoked set")),
        };
        assert_eq!(
            decode_packet(&encode_revsummary(&summary)).unwrap(),
            WirePacket::RevSummary(summary)
        );
        let pull = RevPullMessage {
            from: Symbol::intern("bob"),
            to: Symbol::intern("alice"),
            issuer: Symbol::intern("carol"),
        };
        assert_eq!(
            decode_packet(&encode_revpull(&pull)).unwrap(),
            WirePacket::RevPull(pull)
        );
    }

    #[test]
    fn revgossip_roundtrips_and_stays_distinct_from_revoke() {
        let m = RevokeMessage {
            from: Symbol::intern("alice"),
            to: Symbol::intern("bob"),
            digest: digest_bytes(b"some certificate"),
            auth: vec![3, 1, 4],
        };
        // Same payload, different predicate: the gossip repair channel
        // must not decode as an eager broadcast (receivers apply the
        // two with different strictness).
        assert_eq!(
            decode_packet(&encode_revgossip(&m)).unwrap(),
            WirePacket::RevGossip(m.clone())
        );
        assert_eq!(
            decode_packet(&encode_revoke(&m)).unwrap(),
            WirePacket::Revoke(m)
        );
    }

    #[test]
    fn packet_decode_dispatches_on_predicate() {
        let export = WireMessage {
            from: Symbol::intern("a"),
            to: Symbol::intern("b"),
            rule: Arc::new(parse_rule("p(x).").unwrap()),
            auth: vec![1],
        };
        match decode_packet(&encode(&export)).unwrap() {
            WirePacket::Export(m) => assert_eq!(m, export),
            other => panic!("export decoded as {other:?}"),
        }
        assert!(decode_packet(b"says(a,b,[| p. |]).").is_err());
    }

    #[test]
    fn hex_roundtrip_and_rejects() {
        let d = digest_bytes(b"abc");
        assert_eq!(from_hex(&to_hex(&d)).unwrap(), d.to_vec());
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex");
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        assert_eq!(digest_bytes(b"x"), digest_bytes(b"x"));
        assert_ne!(digest_bytes(b"x"), digest_bytes(b"y"));
    }

    #[test]
    fn revoke_signing_bytes_bind_issuer_and_digest() {
        let d1 = digest_bytes(b"c1");
        let d2 = digest_bytes(b"c2");
        let a = Symbol::intern("alice");
        let b = Symbol::intern("bob");
        assert_ne!(revoke_signing_bytes(a, &d1), revoke_signing_bytes(b, &d1));
        assert_ne!(revoke_signing_bytes(a, &d1), revoke_signing_bytes(a, &d2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(rule_src: &str, auth: &[u8]) -> WireMessage {
        WireMessage {
            from: Symbol::intern("alice"),
            to: Symbol::intern("bob"),
            rule: Arc::new(parse_rule(rule_src).unwrap()),
            auth: auth.to_vec(),
        }
    }

    #[test]
    fn roundtrip_fact() {
        let m = msg("access(carol,file1,read).", &[1, 2, 3]);
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn roundtrip_rule_with_body() {
        let m = msg("access(P,O,read) <- good(P), !banned(P).", b"");
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded.rule.to_string(), m.rule.to_string());
        assert!(decoded.auth.is_empty());
    }

    #[test]
    fn roundtrip_nested_quote() {
        let m = msg(
            "says(alice,bob,[| reachable(a,b). |]) <- neighbor(alice,bob).",
            &[0xff; 16],
        );
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn rule_bytes_stable() {
        let r = parse_rule("p(X) <- q(X).").unwrap();
        assert_eq!(rule_bytes(&r), rule_bytes(&r.clone()));
        let r2 = parse_rule("p(X)   <-   q(X).").unwrap();
        // Canonical form erases whitespace differences.
        assert_eq!(rule_bytes(&r), rule_bytes(&r2));
    }

    #[test]
    fn tampered_payload_fails_decode_or_differs() {
        let m = msg("good(alice).", b"sig");
        let mut bytes = encode(&m);
        // Flip a byte inside the rule text.
        let pos = bytes.len() / 2;
        bytes[pos] = bytes[pos].wrapping_add(1);
        match decode(&bytes) {
            Err(_) => {}                           // broken syntax
            Ok(decoded) => assert_ne!(decoded, m), // or a different message
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode(b"not datalog at all").is_err());
        assert!(decode(&[0xff, 0xfe, 0x00]).is_err());
        // A non-export fact is rejected.
        assert!(decode(b"says(a,b,[| p. |]).").is_err());
    }
}
