//! Wire encoding for rules and tuples.
//!
//! LBTrust principals exchange *rules* (facts are bodyless rules, §4.1 of
//! the paper). The wire format is the canonical text of the Datalog
//! dialect itself: deterministic, self-describing, and — crucially for
//! the authentication schemes — the exact byte string over which
//! signatures and MACs are computed. A message is one `export` tuple:
//! `export[<to>](<from>, <rule-quote>, <signature-bytes>)`.

use lbtrust_datalog::ast::{Atom, Rule, Term};
use lbtrust_datalog::{parse_rule, Symbol, Value};
use std::fmt;
use std::sync::Arc;

/// Wire decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Description.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// A decoded LBTrust message: an exported rule with authentication data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireMessage {
    /// The sending principal.
    pub from: Symbol,
    /// The receiving principal.
    pub to: Symbol,
    /// The communicated rule.
    pub rule: Arc<Rule>,
    /// Authentication bytes (empty for plaintext transfer).
    pub auth: Vec<u8>,
}

/// The canonical byte string of a rule — what gets signed/MACed.
pub fn rule_bytes(rule: &Rule) -> Vec<u8> {
    rule.to_string().into_bytes()
}

/// Encodes a message as the canonical text of an `export` fact.
pub fn encode(msg: &WireMessage) -> Vec<u8> {
    let fact = Rule::fact(Atom {
        pred: lbtrust_datalog::ast::PredRef::Name(Symbol::intern("export")),
        key_args: vec![Term::Val(Value::Sym(msg.to))],
        args: vec![
            Term::Val(Value::Sym(msg.from)),
            Term::Val(Value::Quote(msg.rule.clone())),
            Term::Val(Value::bytes(&msg.auth)),
        ],
    });
    fact.to_string().into_bytes()
}

/// Decodes a message produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<WireMessage, WireError> {
    let text = std::str::from_utf8(bytes).map_err(|e| WireError {
        message: format!("invalid utf-8: {e}"),
    })?;
    let fact = parse_rule(text).map_err(|e| WireError {
        message: format!("unparseable message: {e}"),
    })?;
    if fact.heads.len() != 1 || !fact.body.is_empty() {
        return Err(WireError {
            message: "message is not a single fact".into(),
        });
    }
    let head = &fact.heads[0];
    if head.pred.name().map(|s| s.as_str()) != Some("export") {
        return Err(WireError {
            message: format!("unexpected predicate in '{head}'"),
        });
    }
    // The parser yields `Term::Quote` for quote literals; a programmatic
    // encode uses `Term::Val(Value::Quote)`. Accept both.
    fn as_quote(term: &Term) -> Option<Arc<Rule>> {
        match term {
            Term::Quote(r) => Some(r.clone()),
            Term::Val(Value::Quote(r)) => Some(r.clone()),
            _ => None,
        }
    }
    let (to, from, rule, auth) = match (head.key_args.as_slice(), head.args.as_slice()) {
        ([Term::Val(Value::Sym(to))], [Term::Val(Value::Sym(from)), quote, Term::Val(Value::Bytes(auth))]) => {
            let Some(rule) = as_quote(quote) else {
                return Err(WireError {
                    message: format!("expected a quoted rule in '{head}'"),
                });
            };
            (*to, *from, rule, auth.to_vec())
        }
        _ => {
            return Err(WireError {
                message: format!("malformed export fact '{head}'"),
            })
        }
    };
    Ok(WireMessage {
        from,
        to,
        rule,
        auth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(rule_src: &str, auth: &[u8]) -> WireMessage {
        WireMessage {
            from: Symbol::intern("alice"),
            to: Symbol::intern("bob"),
            rule: Arc::new(parse_rule(rule_src).unwrap()),
            auth: auth.to_vec(),
        }
    }

    #[test]
    fn roundtrip_fact() {
        let m = msg("access(carol,file1,read).", &[1, 2, 3]);
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn roundtrip_rule_with_body() {
        let m = msg("access(P,O,read) <- good(P), !banned(P).", b"");
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded.rule.to_string(), m.rule.to_string());
        assert!(decoded.auth.is_empty());
    }

    #[test]
    fn roundtrip_nested_quote() {
        let m = msg(
            "says(alice,bob,[| reachable(a,b). |]) <- neighbor(alice,bob).",
            &[0xff; 16],
        );
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn rule_bytes_stable() {
        let r = parse_rule("p(X) <- q(X).").unwrap();
        assert_eq!(rule_bytes(&r), rule_bytes(&r.clone()));
        let r2 = parse_rule("p(X)   <-   q(X).").unwrap();
        // Canonical form erases whitespace differences.
        assert_eq!(rule_bytes(&r), rule_bytes(&r2));
    }

    #[test]
    fn tampered_payload_fails_decode_or_differs() {
        let m = msg("good(alice).", b"sig");
        let mut bytes = encode(&m);
        // Flip a byte inside the rule text.
        let pos = bytes.len() / 2;
        bytes[pos] = bytes[pos].wrapping_add(1);
        match decode(&bytes) {
            Err(_) => {}                            // broken syntax
            Ok(decoded) => assert_ne!(decoded, m), // or a different message
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode(b"not datalog at all").is_err());
        assert!(decode(&[0xff, 0xfe, 0x00]).is_err());
        // A non-export fact is rejected.
        assert!(decode(b"says(a,b,[| p. |]).").is_err());
    }
}
