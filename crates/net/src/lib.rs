//! # lbtrust-net — simulated distribution substrate for LBTrust
//!
//! The paper runs principals on physically separate nodes (§3.5, §6).
//! This crate provides the deterministic stand-in used by the
//! reproduction: node identities ([`node`]), a seeded discrete-event
//! network with latency jitter, loss and duplication ([`network`]), and
//! the canonical-text wire encoding of exported rules ([`wire`]) over
//! which signatures are computed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod node;
pub mod wire;

pub use network::{Envelope, NetMetrics, NetworkConfig, NetworkStats, SimNetwork};
pub use node::NodeId;
pub use wire::{
    decode, decode_packet, digest_bytes, encode, encode_packet, encode_revgossip, encode_revoke,
    encode_revpull, encode_revsummary, frame_meta_file, frame_record, from_hex, read_frame,
    read_frame_sequence, read_meta_file, revoke_signing_bytes, rule_bytes, to_hex, RevPullMessage,
    RevSummaryMessage, RevokeMessage, WireDigest, WireError, WireMessage, WirePacket,
    FRAME_OVERHEAD, MAX_FRAME_BODY, META_CHECKPOINT, META_MANIFEST,
};
