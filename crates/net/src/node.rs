//! Node identities for the simulated distributed environment.
//!
//! LogicBlox "separates logical partitioning and distribution … providing
//! location transparency" (§3.5 of the paper). A [`NodeId`] names a
//! physical node; the trust layer maps principals onto nodes with the
//! `loc`/`predNode` placement predicates.

use lbtrust_datalog::Symbol;
use std::fmt;

/// A physical node in the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(Symbol);

impl NodeId {
    /// Creates (or interns) a node id by name.
    pub fn new(name: &str) -> NodeId {
        NodeId(Symbol::intern(name))
    }

    /// The node's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying symbol.
    pub fn symbol(&self) -> Symbol {
        self.0
    }
}

impl From<Symbol> for NodeId {
    fn from(s: Symbol) -> Self {
        NodeId(s)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_by_name() {
        assert_eq!(NodeId::new("n1"), NodeId::new("n1"));
        assert_ne!(NodeId::new("n1"), NodeId::new("n2"));
        assert_eq!(NodeId::new("n1").name(), "n1");
    }
}
