//! Property tests for the network simulator: message conservation,
//! determinism per seed, and delivery-order laws.

use lbtrust_net::{NetworkConfig, NodeId, SimNetwork};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// sent = delivered + dropped, adjusted for duplicates, once drained.
    #[test]
    fn message_conservation(
        n in 1usize..60,
        drop_pct in 0u32..100,
        dup_pct in 0u32..100,
        seed in any::<u64>(),
    ) {
        let mut net = SimNetwork::new(
            NetworkConfig {
                latency_min: 1,
                latency_max: 50,
                drop_prob: drop_pct as f64 / 100.0,
                duplicate_prob: dup_pct as f64 / 100.0,
                ..NetworkConfig::default()
            },
            seed,
        );
        let (a, b) = (NodeId::new("a"), NodeId::new("b"));
        for i in 0..n {
            net.send(a, b, vec![i as u8]);
        }
        let delivered = net.deliver_all().len();
        let stats = net.stats();
        prop_assert_eq!(stats.sent, n);
        prop_assert_eq!(
            delivered,
            n - stats.dropped + stats.duplicated,
            "delivered {} of {} (dropped {}, duplicated {})",
            delivered, n, stats.dropped, stats.duplicated
        );
        prop_assert!(!net.has_pending());
    }

    /// The same seed yields the same delivery sequence.
    #[test]
    fn determinism_per_seed(n in 1usize..40, seed in any::<u64>()) {
        let run = || {
            let mut net = SimNetwork::new(
                NetworkConfig {
                    latency_min: 1,
                    latency_max: 500,
                    drop_prob: 0.2,
                    duplicate_prob: 0.2,
                    ..NetworkConfig::default()
                },
                seed,
            );
            let (a, b) = (NodeId::new("a"), NodeId::new("b"));
            for i in 0..n {
                net.send(a, b, vec![i as u8, (i >> 8) as u8]);
            }
            net.deliver_all()
                .into_iter()
                .map(|e| e.payload)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Conservation extended to the fault plane: blackholed and
    /// delayed messages are accounted distinctly, and once every
    /// partition heals and every held message is released,
    /// delivered = sent - dropped - blackholed + duplicated.
    #[test]
    fn fault_plane_conservation(
        n in 1usize..60,
        drop_pct in 0u32..50,
        delay_pct in 0u32..100,
        reorder_pct in 0u32..100,
        cut_first in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut net = SimNetwork::new(
            NetworkConfig {
                latency_min: 1,
                latency_max: 50,
                drop_prob: drop_pct as f64 / 100.0,
                delay_prob: delay_pct as f64 / 100.0,
                delay_steps_max: 4,
                reorder_prob: reorder_pct as f64 / 100.0,
                ..NetworkConfig::default()
            },
            seed,
        );
        let (a, b) = (NodeId::new("a"), NodeId::new("b"));
        if cut_first {
            net.partition(a, b, Some(net.step() + 2));
        }
        let mut delivered = 0;
        for i in 0..n {
            net.begin_step();
            net.send(a, b, vec![i as u8]);
            delivered += net.deliver_all().len();
        }
        // Drain the delay queue: advance steps until nothing is held.
        while net.has_pending() {
            net.begin_step();
            delivered += net.deliver_all().len();
        }
        let stats = net.stats();
        prop_assert_eq!(stats.sent, n);
        prop_assert_eq!(
            delivered,
            stats.sent - stats.dropped - stats.blackholed + stats.duplicated,
            "sent {} dropped {} blackholed {} delayed {} duplicated {}",
            stats.sent, stats.dropped, stats.blackholed, stats.delayed, stats.duplicated
        );
        prop_assert_eq!(net.active_partitions(), 0, "step-scheduled heal fired");
    }

    /// Delivery times never decrease.
    #[test]
    fn clock_is_monotone(n in 1usize..40, seed in any::<u64>()) {
        let mut net = SimNetwork::new(
            NetworkConfig {
                latency_min: 1,
                latency_max: 1000,
                ..NetworkConfig::default()
            },
            seed,
        );
        let (a, b) = (NodeId::new("a"), NodeId::new("b"));
        for i in 0..n {
            net.send(a, b, vec![i as u8]);
        }
        let mut last = net.now();
        while net.deliver_next().is_some() {
            prop_assert!(net.now() >= last);
            last = net.now();
        }
    }
}
