//! # lbtrust-bench — workloads for regenerating the paper's evaluation
//!
//! One entry per experiment in DESIGN.md §4:
//!
//! * [`fig2`] — the paper's only measured figure: execution time over
//!   number of messages for RSA / HMAC / Plaintext authentication (§6).
//! * [`workloads`] — graph and access-control generators behind the
//!   ablation benches (A1–A7).
//!
//! The `fig2` *binary* (`cargo run -p lbtrust-bench --release --bin
//! fig2`) prints the same series Figure 2 plots; the criterion benches
//! measure the same code paths with statistical rigor at smaller sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig2;
pub mod workloads;

pub use fig2::{fig2_point, Fig2Point};
