//! # lbtrust-bench — workloads for regenerating the paper's evaluation
//!
//! One entry per experiment in DESIGN.md §4:
//!
//! * [`fig2`] — the paper's only measured figure: execution time over
//!   number of messages for RSA / HMAC / Plaintext authentication (§6).
//! * [`workloads`] — graph and access-control generators behind the
//!   ablation benches (A1–A7).
//!
//! The `fig2` *binary* (`cargo run -p lbtrust-bench --release --bin
//! fig2`) prints the same series Figure 2 plots; the criterion benches
//! measure the same code paths with statistical rigor at smaller sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig2;
pub mod workloads;

pub use fig2::{fig2_point, Fig2Point};

/// Appends a line to the same `target/criterion/summary.txt` the
/// criterion shim writes, so per-bench summaries (parallel scaling,
/// compaction footprints, store stats) ride the single CI artifact.
/// The target directory is found from the executable's own path, since
/// cargo runs bench binaries with the *package* directory as cwd.
/// Best-effort: benches must not fail because a summary file could not
/// be written.
pub fn persist_line(line: &str) {
    use std::io::Write;
    let dir = std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(|t| t.join("criterion"))
        })
        .unwrap_or_else(|| std::path::Path::new("target").join("criterion"));
    println!("{line}");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("summary.txt"))
    {
        let _ = writeln!(f, "{line}");
    }
}
