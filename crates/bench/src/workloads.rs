//! Workload generators for the ablation experiments (A1–A7 in
//! DESIGN.md).

use lbtrust_datalog::{Database, Symbol, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chain graph `0 -> 1 -> … -> n-1` as `edge` facts.
pub fn chain_edges(n: usize) -> Vec<(Value, Value)> {
    (0..n.saturating_sub(1))
        .map(|i| (node_name(i), node_name(i + 1)))
        .collect()
}

/// A random directed graph with `n` nodes and average out-degree
/// `degree`, deterministic per seed.
pub fn random_edges(n: usize, degree: usize, seed: u64) -> Vec<(Value, Value)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * degree);
    for i in 0..n {
        for _ in 0..degree {
            let j = rng.gen_range(0..n);
            if i != j {
                edges.push((node_name(i), node_name(j)));
            }
        }
    }
    edges.sort_by_key(|(a, b)| (a.to_string(), b.to_string()));
    edges.dedup();
    edges
}

/// Interned node name `n<i>`.
pub fn node_name(i: usize) -> Value {
    Value::sym(&format!("n{i}"))
}

/// Loads edges into a database under `edge/2`.
pub fn edge_db(edges: &[(Value, Value)]) -> Database {
    let mut db = Database::new();
    let edge = Symbol::intern("edge");
    for (a, b) in edges {
        db.insert(edge, vec![a.clone(), b.clone()]);
    }
    db
}

/// The transitive-closure program (A1/A2 substrate).
pub const TC_PROGRAM: &str = "\
    reach(X,Y) <- edge(X,Y).\n\
    reach(X,Z) <- reach(X,Y), edge(Y,Z).\n";

/// An access-control EDB for the magic-sets ablation (A2): `users`
/// principals, each owning `files_per_user` files, a delegation chain of
/// length `chain`, and the recursive access policy.
pub struct AccessWorkload {
    /// The EDB.
    pub db: Database,
    /// The policy rules (source).
    pub program: &'static str,
    /// A principal at the end of the delegation chain (the selective
    /// query target).
    pub target_user: Value,
}

/// See [`AccessWorkload`].
pub fn access_workload(users: usize, files_per_user: usize, chain: usize) -> AccessWorkload {
    let mut db = Database::new();
    let owns = Symbol::intern("owns");
    let mode = Symbol::intern("mode");
    let delegated = Symbol::intern("delegated");
    for u in 0..users {
        for f in 0..files_per_user {
            db.insert(
                owns,
                vec![
                    Value::sym(&format!("u{u}")),
                    Value::sym(&format!("f{u}_{f}")),
                ],
            );
        }
    }
    for m in ["read", "write"] {
        db.insert(mode, vec![Value::sym(m)]);
    }
    // u0 delegates down a chain of fresh principals.
    for c in 0..chain {
        let from = if c == 0 {
            "u0".to_string()
        } else {
            format!("d{}", c - 1)
        };
        db.insert(
            delegated,
            vec![Value::sym(&from), Value::sym(&format!("d{c}"))],
        );
    }
    AccessWorkload {
        db,
        program: "\
            access(P,O,M) <- owns(P,O), mode(M).\n\
            access(P,O,M) <- delegated(Q,P), access(Q,O,M).\n",
        target_user: Value::sym(&format!("d{}", chain.saturating_sub(1))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbtrust_datalog::{parse_program, Builtins, Engine};

    #[test]
    fn chain_has_expected_closure() {
        let db0 = edge_db(&chain_edges(10));
        let program = parse_program(TC_PROGRAM).unwrap();
        let mut db = db0.clone();
        Engine::new(&program.rules, &Builtins::new())
            .run(&mut db)
            .unwrap();
        // n*(n-1)/2 pairs for a 10-node chain: 45.
        assert_eq!(db.count(Symbol::intern("reach")), 45);
    }

    #[test]
    fn random_graph_deterministic() {
        assert_eq!(random_edges(16, 3, 7), random_edges(16, 3, 7));
        assert_ne!(random_edges(16, 3, 7), random_edges(16, 3, 8));
    }

    #[test]
    fn access_workload_shape() {
        let w = access_workload(10, 3, 4);
        assert_eq!(w.db.count(Symbol::intern("owns")), 30);
        assert_eq!(w.db.count(Symbol::intern("delegated")), 4);
        assert_eq!(w.target_user, Value::sym("d3"));
        // The chained principal can access u0's files.
        let program = parse_program(w.program).unwrap();
        let mut db = w.db.clone();
        Engine::new(&program.rules, &Builtins::new())
            .run(&mut db)
            .unwrap();
        assert!(db.contains(
            Symbol::intern("access"),
            &[Value::sym("d3"), Value::sym("f0_0"), Value::sym("read")]
        ));
    }
}
