//! Figure 2: "Execution Time over Number of Messages" (§6 of the paper).
//!
//! "Our evaluation consists of a micro benchmark, in which two principals
//! alice and bob each execute a Binder rule. Together, the two principals
//! export and import authenticated facts from each other's context via
//! the says construct." Each message incurs one signature generation
//! (export at alice) and one verification (import at bob) under the
//! configured scheme: Plaintext (no signature), HMAC (160-bit SHA-1 MAC),
//! or RSA (1024-bit signatures).

use lbtrust::{AuthScheme, System};
use lbtrust_datalog::{Symbol, Value};
use std::time::{Duration, Instant};

/// One measured point of Figure 2.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Point {
    /// Authentication scheme.
    pub scheme: AuthScheme,
    /// Number of messages exported+imported.
    pub messages: usize,
    /// End-to-end execution time (local fixpoints + export + import +
    /// verification).
    pub elapsed: Duration,
    /// Messages accepted at bob (sanity: must equal `messages`).
    pub accepted: usize,
    /// Bytes on the (simulated) wire.
    pub wire_bytes: usize,
}

/// Runs one experimental run: alice exports `messages` authenticated
/// facts to bob, who imports and verifies each. Returns the measured
/// point. `rsa_bits` is 1024 in the paper's setup.
pub fn fig2_point(scheme: AuthScheme, messages: usize, rsa_bits: usize) -> Fig2Point {
    let mut sys = System::new().with_rsa_bits(rsa_bits);
    let alice = sys.add_principal("alice", "host1").expect("alice");
    let bob = sys.add_principal("bob", "host2").expect("bob");
    sys.establish_shared_secret(alice, bob).expect("secret");
    sys.set_auth_scheme(alice, scheme).expect("scheme alice");
    sys.set_auth_scheme(bob, scheme).expect("scheme bob");

    // Alice's Binder rule: every queued item is said to bob.
    sys.workspace_mut(alice)
        .unwrap()
        .load("policy", "says(me,bob,[| payload(I). |]) <- item(I).")
        .expect("alice policy");
    // Bob's Binder rule: imported payloads are recorded.
    sys.workspace_mut(bob)
        .unwrap()
        .load("policy", "received(I) <- says(alice,me,[| payload(I) |]).")
        .expect("bob policy");

    // Queue the items (outside the timed region: the paper measures
    // query execution, not workload setup).
    let item = Symbol::intern("item");
    {
        let ws = sys.workspace_mut(alice).unwrap();
        for i in 0..messages {
            ws.assert_fact(item, vec![Value::Int(i as i64)]);
        }
    }

    let start = Instant::now();
    let stats = sys.run_to_quiescence(64).expect("quiescence");
    let elapsed = start.elapsed();

    let received = sys
        .workspace(bob)
        .unwrap()
        .tuples(Symbol::intern("received"));
    assert_eq!(
        received.len(),
        messages,
        "{scheme}: bob imported {} of {} messages",
        received.len(),
        messages
    );

    Fig2Point {
        scheme,
        messages,
        elapsed,
        accepted: stats.messages_accepted,
        wire_bytes: sys.net_stats().bytes_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_points_run_for_all_schemes() {
        for scheme in AuthScheme::ALL {
            let p = fig2_point(scheme, 10, 512);
            assert_eq!(p.accepted, 10, "{scheme}");
            assert!(p.wire_bytes > 0);
        }
    }

    #[test]
    fn rsa_costs_more_than_plaintext() {
        // The ordering Figure 2 reports. Use enough messages that the
        // crypto dominates constant overheads, and debug-build slowness
        // doesn't matter since both sides pay it.
        let plain = fig2_point(AuthScheme::Plaintext, 50, 512);
        let rsa = fig2_point(AuthScheme::Rsa, 50, 512);
        assert!(
            rsa.elapsed > plain.elapsed,
            "rsa {:?} <= plaintext {:?}",
            rsa.elapsed,
            plain.elapsed
        );
    }
}
