//! `lbtrust-lint` — the static-analysis CLI over SeNDlog/LBTrust
//! programs.
//!
//! Runs the `lbtrust-analysis` passes (dependency lints, authority
//! flow, communication amplification, magic-set applicability) over
//! each program given on the command line and prints every finding
//! with its severity and source position. Files whose first
//! non-whitespace token is an `At <Var>:` header are treated as
//! SeNDlog and translated (line-preservingly) before analysis, so
//! positions refer to the SeNDlog source.
//!
//! Usage: `lbtrust-lint [--deny] [--builtin] [file.sdl ...]`
//!
//! * `--builtin` — also lint the three in-tree protocols
//!   (REACHABILITY, PATH_VECTOR, REV_GOSSIP) exactly as the runtime
//!   loads them (gossip on its private `gsays` channel);
//! * `--deny` — strict mode: every lint at `Deny` (except the
//!   applicability report, which stays informational).
//!
//! Exit status: 0 when no program has a deny-level finding, 1 when any
//! does, 2 on usage/read/parse errors. This is the workspace CI gate:
//! `cargo run -p lbtrust-bench --bin lbtrust-lint -- --deny --builtin
//! examples/programs/*.sdl`.

use lbtrust_analysis::{analyze, Analysis, AnalyzerConfig, LintLevel};
use lbtrust_datalog::parse_program;
use lbtrust_sendlog::{rev_gossip_program, sendlog_to_lbtrust, PATH_VECTOR, REACHABILITY};

fn main() {
    let mut config = AnalyzerConfig::default();
    let mut builtin = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => config = AnalyzerConfig::strict(),
            "--builtin" => builtin = true,
            "--help" | "-h" => {
                println!("usage: lbtrust-lint [--deny] [--builtin] [file.sdl ...]");
                return;
            }
            flag if flag.starts_with('-') => {
                eprintln!("lbtrust-lint: unknown flag `{flag}`");
                std::process::exit(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if !builtin && paths.is_empty() {
        eprintln!("usage: lbtrust-lint [--deny] [--builtin] [file.sdl ...]");
        std::process::exit(2);
    }

    let mut programs: Vec<(String, String)> = Vec::new();
    if builtin {
        for (name, src) in [("REACHABILITY", REACHABILITY), ("PATH_VECTOR", PATH_VECTOR)] {
            programs.push((format!("<builtin {name}>"), translate_or_die(name, src)));
        }
        match rev_gossip_program() {
            Ok(src) => programs.push(("<builtin REV_GOSSIP>".to_string(), src)),
            Err(e) => die(&format!("translating REV_GOSSIP: {e}")),
        }
    }
    for path in paths {
        let src = match std::fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => return die(&format!("reading {path}: {e}")),
        };
        let src = if src.trim_start().starts_with("At ") {
            translate_or_die(&path, &src)
        } else {
            src
        };
        programs.push((path, src));
    }

    let mut denied = false;
    for (name, src) in &programs {
        let program = match parse_program(src) {
            Ok(p) => p,
            Err(e) => return die(&format!("parsing {name}: {e}")),
        };
        let analysis = analyze(&program, &config);
        denied |= report(name, &analysis);
    }
    std::process::exit(i32::from(denied));
}

/// Prints one program's findings; returns whether any was deny-level.
fn report(name: &str, analysis: &Analysis) -> bool {
    let visible: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.level >= LintLevel::Warn)
        .collect();
    let magic = &analysis.magic;
    println!(
        "{name}: {} finding{}, magic-set {}/{} rules specializable",
        visible.len(),
        if visible.len() == 1 { "" } else { "s" },
        magic.applicable.len(),
        magic.total_rules,
    );
    for d in &visible {
        println!("  {d}");
    }
    for b in &magic.blockers {
        println!(
            "  note[magic]: rule at line {} blocked: {}",
            b.span, b.reason
        );
    }
    analysis.has_denials()
}

fn translate_or_die(name: &str, src: &str) -> String {
    match sendlog_to_lbtrust(src) {
        Ok(p) => p.lbtrust_src,
        Err(e) => {
            die(&format!("translating {name}: {e}"));
            unreachable!()
        }
    }
}

fn die(msg: &str) {
    eprintln!("lbtrust-lint: {msg}");
    std::process::exit(2);
}
