//! Regenerates Figure 2 of the paper: execution time over number of
//! messages for RSA, HMAC, and Plaintext authentication.
//!
//! The paper sweeps 0–10k messages on a Xeon cluster; this harness runs
//! the same alice/bob Binder micro-benchmark on the simulated substrate.
//! Absolute times differ from the paper's (different hardware, engine,
//! and crypto implementation); the *shape* — linear growth, RSA ≫ HMAC ≳
//! Plaintext — is the reproduced result. See EXPERIMENTS.md.
//!
//! Run with: `cargo run -p lbtrust-bench --release --bin fig2`
//! Optional args: `fig2 <max_k> <step_k> <rsa_bits>` (defaults 10 1 1024).

use lbtrust::AuthScheme;
use lbtrust_bench::fig2_point;

fn main() {
    let mut args = std::env::args().skip(1);
    let max_k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let step_k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let rsa_bits: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);

    println!("Figure 2: Execution Time over Number of Messages");
    println!("(two principals; each message is exported, transferred, imported, verified)");
    println!("(RSA modulus: {rsa_bits} bits — the paper uses 1024)\n");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "messages(k)", "RSA (s)", "HMAC (s)", "Plaintext (s)"
    );

    let mut k = 0;
    while k <= max_k {
        let n = k * 1000;
        let mut row = format!("{k:>12}");
        for scheme in [AuthScheme::Rsa, AuthScheme::HmacSha1, AuthScheme::Plaintext] {
            let point = fig2_point(scheme, n, rsa_bits);
            row.push_str(&format!(" {:>14.3}", point.elapsed.as_secs_f64()));
        }
        println!("{row}");
        k += step_k.max(1);
    }

    println!("\nExpected shape (paper §6): linear in message count;");
    println!("RSA most expensive (public-key crypto), HMAC a slight increase");
    println!("over Plaintext.");
}
