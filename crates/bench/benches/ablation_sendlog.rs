//! Experiment A5: SeNDlog reachability scaling over network size, with
//! and without authentication — the declarative-networking side of the
//! paper (§5.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::AuthScheme;
use lbtrust_sendlog::{SendlogNetwork, REACHABILITY};

fn ring_network(n: usize, scheme: AuthScheme) -> SendlogNetwork {
    let names: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut net = SendlogNetwork::new(&refs, REACHABILITY, scheme, 512).unwrap();
    for i in 0..n {
        net.add_bidi_link(&names[i], &names[(i + 1) % n]).unwrap();
    }
    net
}

fn reachability_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sendlog_reachability");
    group.sample_size(10);
    for &n in &[4usize, 6, 8] {
        for scheme in [AuthScheme::Plaintext, AuthScheme::HmacSha1, AuthScheme::Rsa] {
            group.bench_with_input(
                BenchmarkId::new(format!("ring_{scheme}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let mut net = ring_network(n, scheme);
                        net.run(256).unwrap();
                        net.system().net_stats().sent
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, reachability_scaling);
criterion_main!(benches);
