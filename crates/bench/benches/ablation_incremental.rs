//! Experiment A7: incremental recomputation ("active rules", §3.1) vs
//! full re-evaluation when one fact is asserted into a populated
//! workspace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust_bench::workloads::{chain_edges, edge_db, TC_PROGRAM};
use lbtrust_datalog::{parse_program, Builtins, Database, Engine, Symbol, Value};

fn incremental_vs_full(c: &mut Criterion) {
    let program = parse_program(TC_PROGRAM).unwrap();
    let builtins = Builtins::new();
    let edge = Symbol::intern("edge");
    let mut group = c.benchmark_group("ablation_incremental");
    group.sample_size(10);
    for &n in &[64usize, 128] {
        // Pre-materialize the closure of an n-chain.
        let mut warm: Database = edge_db(&chain_edges(n));
        Engine::new(&program.rules, &builtins)
            .run(&mut warm)
            .unwrap();
        let new_edge = vec![
            Value::sym(&format!("n{}", n - 1)),
            Value::sym(&format!("x{n}")), // fresh tail node
        ];
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut db = warm.clone();
                let mark = db.count(edge);
                db.insert(edge, new_edge.clone());
                Engine::new(&program.rules, &builtins)
                    .run_incremental(&mut db, &[(edge, mark)])
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &n, |b, _| {
            b.iter(|| {
                let mut db = edge_db(&chain_edges(n));
                db.insert(edge, new_edge.clone());
                Engine::new(&program.rules, &builtins).run(&mut db).unwrap()
            })
        });
        // Deletion: DRed-repair vs re-deriving from scratch.
        let victim = vec![
            Value::sym(&format!("n{}", n / 2 - 1)),
            Value::sym(&format!("n{}", n / 2)),
        ];
        group.bench_with_input(BenchmarkId::new("dred_retract", n), &n, |b, _| {
            b.iter(|| {
                let mut db = warm.clone();
                lbtrust_datalog::dred::retract(
                    &program.rules,
                    &mut db,
                    &builtins,
                    &[(edge, victim.clone())],
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("retract_from_scratch", n), &n, |b, _| {
            b.iter(|| {
                let mut db = edge_db(&chain_edges(n));
                db.relation_mut(edge)
                    .remove_tuples(&std::collections::HashSet::from([victim.clone()]));
                Engine::new(&program.rules, &builtins).run(&mut db).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, incremental_vs_full);
criterion_main!(benches);
