//! Criterion version of Figure 2 (experiment Fig.2 in DESIGN.md):
//! per-scheme cost of the export→transfer→import→verify pipeline.
//!
//! Smaller message counts than the paper's 10k sweep keep criterion's
//! repeated sampling tractable; the `fig2` binary runs the full sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::AuthScheme;
use lbtrust_bench::fig2_point;

fn auth_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_auth_overhead");
    group.sample_size(10);
    for &messages in &[100usize, 400] {
        for scheme in [AuthScheme::Rsa, AuthScheme::HmacSha1, AuthScheme::Plaintext] {
            group.bench_with_input(
                BenchmarkId::new(scheme.to_string(), messages),
                &messages,
                |b, &n| b.iter(|| fig2_point(scheme, n, 1024)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, auth_overhead);
criterion_main!(benches);
