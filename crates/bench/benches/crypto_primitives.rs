//! Experiment A6: raw cost of the cryptographic primitives behind each
//! authentication scheme — this is what separates the Figure 2 curves.

use criterion::{criterion_group, criterion_main, Criterion};
use lbtrust_crypto::hmac::hmac_sha1;
use lbtrust_crypto::sha1::Sha1;
use lbtrust_crypto::KeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn primitives(c: &mut Criterion) {
    let msg = b"export[bob](alice,[| payload(42). |],#)"; // typical wire size
    let key = b"a-32-byte-shared-secret-material";
    let kp1024 = KeyPair::generate(1024, &mut StdRng::seed_from_u64(1));
    let sig = kp1024.private.sign(msg).unwrap();

    let mut group = c.benchmark_group("crypto_primitives");
    group.bench_function("sha1_64B", |b| b.iter(|| Sha1::digest(black_box(msg))));
    group.bench_function("hmac_sha1_64B", |b| {
        b.iter(|| hmac_sha1(black_box(key), black_box(msg)))
    });
    group.bench_function("rsa1024_sign", |b| {
        b.iter(|| kp1024.private.sign(black_box(msg)).unwrap())
    });
    group.bench_function("rsa1024_verify", |b| {
        b.iter(|| {
            kp1024
                .public_key()
                .verify(black_box(msg), black_box(&sig))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
