//! Experiment A8: the certificate store. Measures (a) first import of a
//! signed certificate (real RSA verification) vs cached re-import of
//! the identical certificate (content-addressed cache hit), and (b)
//! revocation latency — signed revocation verified, dependent facts
//! retracted via DRed — on a populated system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::System;
use lbtrust_certstore::CertStore;

fn import_cached_vs_uncached(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_certstore");
    group.sample_size(10);
    for &nfacts in &[8usize, 32] {
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        let facts: String = (0..nfacts).map(|i| format!("good(p{i}). ")).collect();
        let certs = sys.issue_certificates(alice, &facts, &[], None).unwrap();

        group.bench_with_input(BenchmarkId::new("first_import", nfacts), &nfacts, |b, _| {
            b.iter(|| {
                // Fresh store + fresh cache: every signature verified.
                let mut store = CertStore::new();
                let verifier = sys.key_verifier();
                for cert in &certs {
                    store.insert(cert.clone(), &verifier).unwrap();
                }
                store.len()
            })
        });

        // Warm path: the system's shared cache has seen every signature.
        sys.import_certificates(bob, certs.clone()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("cached_reimport", nfacts),
            &nfacts,
            |b, _| {
                b.iter(|| {
                    let outcomes = sys.reimport_certificates(bob, &certs).unwrap();
                    assert!(outcomes.iter().all(|o| o.cache_hit));
                    outcomes.len()
                })
            },
        );
    }
    group.finish();
}

fn revocation_retraction_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_certstore_revoke");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("revoke_and_retract", 16), |b| {
        b.iter(|| {
            let mut sys = System::new().with_rsa_bits(512);
            let alice = sys.add_principal("alice", "n1").unwrap();
            let bob = sys.add_principal("bob", "n2").unwrap();
            sys.workspace_mut(bob)
                .unwrap()
                .load(
                    "policy",
                    "access(P,f,read) <- says(alice,me,[| good(P) |]).",
                )
                .unwrap();
            let facts: String = (0..16).map(|i| format!("good(p{i}). ")).collect();
            let certs = sys.issue_certificates(alice, &facts, &[], None).unwrap();
            let victim = certs[0].digest();
            sys.import_certificates(bob, certs).unwrap();
            sys.run_to_quiescence(8).unwrap();
            sys.revoke_certificate(alice, victim).unwrap();
            sys.run_to_quiescence(8).unwrap();
            sys.stats().retractions
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    import_cached_vs_uncached,
    revocation_retraction_latency
);
criterion_main!(benches);
