//! Experiment A8: the certificate store. Measures (a) first import of a
//! signed certificate (real RSA verification) vs cached re-import of
//! the identical certificate (content-addressed cache hit), and (b)
//! revocation latency — signed revocation verified, dependent facts
//! retracted via DRed — on a populated system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::System;
use lbtrust_certstore::{shared_verify_cache_with_capacity, CertStore};

fn import_cached_vs_uncached(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_certstore");
    group.sample_size(10);
    for &nfacts in &[8usize, 32] {
        let mut sys = System::new().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        let facts: String = (0..nfacts).map(|i| format!("good(p{i}). ")).collect();
        let certs = sys.issue_certificates(alice, &facts, &[], None).unwrap();

        group.bench_with_input(BenchmarkId::new("first_import", nfacts), &nfacts, |b, _| {
            b.iter(|| {
                // Fresh store + fresh cache: every signature verified.
                let mut store = CertStore::new();
                let verifier = sys.key_verifier();
                for cert in &certs {
                    store.insert(cert.clone(), &verifier).unwrap();
                }
                store.len()
            })
        });

        // Warm path: the system's shared cache has seen every signature.
        sys.import_certificates(bob, certs.clone()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("cached_reimport", nfacts),
            &nfacts,
            |b, _| {
                b.iter(|| {
                    let outcomes = sys.reimport_certificates(bob, &certs).unwrap();
                    assert!(outcomes.iter().all(|o| o.cache_hit));
                    outcomes.len()
                })
            },
        );
    }
    group.finish();
}

fn revocation_retraction_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_certstore_revoke");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("revoke_and_retract", 16), |b| {
        b.iter(|| {
            let mut sys = System::new().with_rsa_bits(512);
            let alice = sys.add_principal("alice", "n1").unwrap();
            let bob = sys.add_principal("bob", "n2").unwrap();
            sys.workspace_mut(bob)
                .unwrap()
                .load(
                    "policy",
                    "access(P,f,read) <- says(alice,me,[| good(P) |]).",
                )
                .unwrap();
            let facts: String = (0..16).map(|i| format!("good(p{i}). ")).collect();
            let certs = sys.issue_certificates(alice, &facts, &[], None).unwrap();
            let victim = certs[0].digest();
            sys.import_certificates(bob, certs).unwrap();
            sys.run_to_quiescence(8).unwrap();
            sys.revoke_certificate(alice, victim).unwrap();
            sys.run_to_quiescence(8).unwrap();
            sys.stats().retractions
        })
    });
    group.finish();
}

/// Cache eviction under a sequential working set larger than capacity
/// (ROADMAP "2Q / scan-resistant eviction"): re-imports a working set
/// through verification caches of shrinking capacity and reports hit
/// rate vs memory. The unbounded run is the baseline. Bounded caches
/// built by `shared_verify_cache_with_capacity` use the 2Q policy: the
/// repeated sweep that collapses plain LRU to a 0% hit rate (the cliff
/// earlier revisions of this bench demonstrated) retains a protected
/// core under 2Q. Warmup runs two sweeps — the first fills probation,
/// the second promotes the re-seen keys out of the ghost history into
/// the protected queue — so the measured sweeps hit it.
fn bounded_cache_hit_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_certstore_lru");
    group.sample_size(10);
    let nfacts = 64usize;
    let mut sys = System::new().with_rsa_bits(512);
    let alice = sys.add_principal("alice", "n1").unwrap();
    let facts: String = (0..nfacts).map(|i| format!("good(p{i}). ")).collect();
    let certs = sys.issue_certificates(alice, &facts, &[], None).unwrap();
    let verifier = sys.key_verifier();

    // Capacity in memoized outcomes; each certificate costs two. `0`
    // encodes "unbounded".
    for &capacity in &[0usize, 128, 64, 32] {
        let cache = if capacity == 0 {
            lbtrust_certstore::shared_verify_cache()
        } else {
            shared_verify_cache_with_capacity(capacity)
        };
        // Two warm sweeps (fill, then ghost-promote), then the measured
        // re-import passes over the working set.
        for _ in 0..2 {
            let mut store = CertStore::with_cache(cache.clone());
            for cert in &certs {
                store.insert(cert.clone(), &verifier).unwrap();
            }
        }
        let label = if capacity == 0 {
            "unbounded".to_string()
        } else {
            format!("cap{capacity}")
        };
        group.bench_with_input(
            BenchmarkId::new("reimport_working_set", &label),
            &capacity,
            |b, _| {
                b.iter(|| {
                    // Fresh store, same cache: hits depend on capacity.
                    let mut fresh = CertStore::with_cache(cache.clone());
                    for cert in &certs {
                        fresh.insert(cert.clone(), &verifier).unwrap();
                    }
                    fresh.len()
                })
            },
        );
        let stats = cache.lock().unwrap().stats();
        let total = stats.hits + stats.misses;
        println!(
            "stats ablation_certstore_lru/{label:<24} hits {:>6} misses {:>6} evictions {:>6} hit-rate {:.1}%",
            stats.hits,
            stats.misses,
            stats.evictions,
            100.0 * stats.hits as f64 / total.max(1) as f64
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    import_cached_vs_uncached,
    revocation_retraction_latency,
    bounded_cache_hit_rate
);
criterion_main!(benches);
