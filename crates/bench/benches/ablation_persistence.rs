//! Experiment A9: the durable certificate store. Measures the three
//! ways a store can come to hold N verified certificates:
//!
//! * **cold_import** — fresh store, fresh cache: every signature pays a
//!   real RSA verification.
//! * **log_replay** — `CertStore::open` over a segment log with a fresh
//!   cache: no RSA at all (recorded outcomes are primed), but the
//!   canonical wire payloads are re-parsed and hashed.
//! * **warm_reopen** — `CertStore::open` sharing a cache that already
//!   holds every outcome (the in-process restart / shared-substrate
//!   case of SAFE-style deployments).
//!
//! Plus the end-to-end variant: a `System` reopening its persistent
//! stores and reconciling workspaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::certstore::{shared_verify_cache, CertStore};
use lbtrust::System;
use lbtrust_bench::persist_line;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("bench-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench tmpdir");
    dir
}

fn cold_vs_replay_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_persistence");
    group.sample_size(10);
    for &nfacts in &[16usize, 64] {
        let dir = tmp_dir(&format!("store{nfacts}"));
        let mut sys = System::new().with_rsa_bits(1024);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let facts: String = (0..nfacts).map(|i| format!("good(p{i}). ")).collect();
        let certs = sys.issue_certificates(alice, &facts, &[], None).unwrap();
        let verifier = sys.key_verifier();

        // Write the segment log once.
        let log_path = dir.join("store.certlog");
        {
            let mut store = CertStore::open(&log_path, shared_verify_cache()).unwrap();
            for cert in &certs {
                store.insert(cert.clone(), &verifier).unwrap();
            }
            store.sync().unwrap();
        }

        group.bench_with_input(BenchmarkId::new("cold_import", nfacts), &nfacts, |b, _| {
            b.iter(|| {
                // Fresh store + fresh cache: every signature verified.
                let mut store = CertStore::with_cache(shared_verify_cache());
                for cert in &certs {
                    store.insert(cert.clone(), &verifier).unwrap();
                }
                store.len()
            })
        });

        group.bench_with_input(BenchmarkId::new("log_replay", nfacts), &nfacts, |b, _| {
            b.iter(|| {
                // Fresh cache: replay parses + primes, no RSA.
                let store = CertStore::open(&log_path, shared_verify_cache()).unwrap();
                assert_eq!(store.active_len(), nfacts);
                store.len()
            })
        });

        let warm = shared_verify_cache();
        let _ = CertStore::open(&log_path, warm.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("warm_reopen", nfacts), &nfacts, |b, _| {
            b.iter(|| {
                let store = CertStore::open(&log_path, warm.clone()).unwrap();
                assert_eq!(store.active_len(), nfacts);
                store.len()
            })
        });

        // Lifecycle observability: the StoreStats counters the
        // segmented-log refactor added, reported into the same summary
        // artifact the shim writes.
        let store = CertStore::open(&log_path, warm.clone()).unwrap();
        let stats = store.stats();
        persist_line(&format!(
            "persistence-stats n={nfacts:<3} segments={} live={}B dead={}B replayed={} from_ckpt={} (see ablation_compaction for the compacted shape)",
            stats.segments, stats.live_bytes, stats.dead_bytes, stats.replayed,
            stats.replayed_from_checkpoint,
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn system_reopen(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_persistence_system");
    group.sample_size(10);
    let nfacts = 16usize;
    let dir = tmp_dir("system");

    // First life: build the logs.
    {
        let mut sys = System::open_persistent(&dir).unwrap().with_rsa_bits(512);
        let alice = sys.add_principal("alice", "n1").unwrap();
        let bob = sys.add_principal("bob", "n2").unwrap();
        sys.workspace_mut(bob)
            .unwrap()
            .load(
                "policy",
                "access(P,f,read) <- says(alice,me,[| good(P) |]).",
            )
            .unwrap();
        let facts: String = (0..nfacts).map(|i| format!("good(p{i}). ")).collect();
        let certs = sys.issue_certificates(alice, &facts, &[], None).unwrap();
        sys.import_certificates(bob, certs).unwrap();
        sys.run_to_quiescence(8).unwrap();
    }

    group.bench_with_input(
        BenchmarkId::new("reopen_and_reconcile", nfacts),
        &nfacts,
        |b, _| {
            b.iter(|| {
                // Second life: keygen + replay + workspace reconciliation.
                let mut sys = System::open_persistent(&dir).unwrap().with_rsa_bits(512);
                sys.add_principal("alice", "n1").unwrap();
                let bob = sys.add_principal("bob", "n2").unwrap();
                sys.workspace_mut(bob)
                    .unwrap()
                    .load(
                        "policy",
                        "access(P,f,read) <- says(alice,me,[| good(P) |]).",
                    )
                    .unwrap();
                sys.run_to_quiescence(8).unwrap();
                let replayed = sys.stats().certs_replayed;
                assert_eq!(replayed, nfacts);
                replayed
            })
        },
    );
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, cold_vs_replay_vs_warm, system_reopen);
criterion_main!(benches);
