//! Experiment A2: full bottom-up evaluation vs the magic-sets rewrite vs
//! tabled top-down resolution for a *selective* access-control query —
//! the paper's §7 "bridge" between access-control-style goal evaluation
//! and network-style bottom-up evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust_bench::workloads::access_workload;
use lbtrust_datalog::ast::{Atom, Term};
use lbtrust_datalog::magic::query_magic;
use lbtrust_datalog::topdown::query_topdown;
use lbtrust_datalog::{parse_program, Builtins, Engine, Value};

fn goal_strategies(c: &mut Criterion) {
    let builtins = Builtins::new();
    let mut group = c.benchmark_group("ablation_magic");
    group.sample_size(10);
    for &users in &[50usize, 200] {
        let w = access_workload(users, 5, 4);
        let program = parse_program(w.program).unwrap();
        // Query: what can the chain-end principal access?
        let query = Atom::new(
            "access",
            vec![
                Term::Val(w.target_user.clone()),
                Term::var("O"),
                Term::Val(Value::sym("read")),
            ],
        );
        group.bench_with_input(BenchmarkId::new("bottom_up_full", users), &users, |b, _| {
            b.iter(|| {
                let mut db = w.db.clone();
                Engine::new(&program.rules, &builtins).run(&mut db).unwrap();
                db.count(lbtrust_datalog::Symbol::intern("access"))
            })
        });
        group.bench_with_input(BenchmarkId::new("magic_sets", users), &users, |b, _| {
            b.iter(|| {
                query_magic(&program.rules, &w.db, &query, &builtins)
                    .unwrap()
                    .0
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("top_down", users), &users, |b, _| {
            b.iter(|| {
                query_topdown(&program.rules, &w.db, &query, &builtins)
                    .unwrap()
                    .0
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, goal_strategies);
criterion_main!(benches);
