//! Experiment A11: anti-entropy revocation gossip vs the (broken)
//! point-to-point broadcast, swept across network loss rates.
//!
//! A hub and 15 receiving stores share a batch of certificates; each
//! iteration revokes one and runs to quiescence. Without gossip, every
//! Revoke packet the loss model eats leaves a store accepting the
//! revoked credential *forever* — the divergence the summary lines
//! quantify. With the SeNDlog gossip program loaded, stores exchange
//! `revsummary` advertisements, pull what they miss, and converge
//! every time; the cost is extra rounds and messages, both reported
//! per loss rate.
//!
//! Summary lines appended to `target/criterion/summary.txt` (the CI
//! artifact):
//!
//! ```text
//! gossip-baseline  drop=0.30 divergent=5/15 after quiescence (broadcast only)
//! gossip-converge  drop=0.30 rounds=4.2 summaries=312 pulls=9 served=11 msgs/rev=41.6
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::certstore::{CertDigest, CertStatus};
use lbtrust::obs::Report;
use lbtrust::{Principal, System};
use lbtrust_bench::persist_line;
use lbtrust_net::{NetworkConfig, NodeId};
use lbtrust_sendlog::rev_gossip_program;
use std::cell::Cell;

/// Hub + receivers.
const PRINCIPALS: usize = 16;
/// Certificates pre-issued per system (one revocation per iteration;
/// the shim caps samples at 30 plus one warmup).
const BATCH: usize = 36;
/// Loss rates swept (percent).
const DROP_PCTS: &[u32] = &[0, 10, 30, 50];

fn network(drop_pct: u32) -> NetworkConfig {
    NetworkConfig {
        drop_prob: f64::from(drop_pct) / 100.0,
        ..NetworkConfig::default()
    }
}

/// A converged deployment holding `BATCH` certificates everywhere.
fn fanout_system(drop_pct: u32, gossip: bool) -> (System, Principal, Vec<CertDigest>) {
    let mut sys =
        System::with_network(network(drop_pct), u64::from(drop_pct) + 1).with_rsa_bits(512);
    if gossip {
        sys = sys
            .with_gossip(&rev_gossip_program().expect("gossip program translates"))
            .expect("gossip program loads");
    }
    let hub = sys.add_principal("hub", "n0").unwrap();
    let receivers: Vec<Principal> = (1..PRINCIPALS)
        .map(|i| {
            sys.add_principal(&format!("r{i}"), &format!("m{i}"))
                .unwrap()
        })
        .collect();
    let facts: String = (0..BATCH).map(|i| format!("good(p{i}). ")).collect();
    let certs = sys.issue_certificates(hub, &facts, &[], None).unwrap();
    for &r in &receivers {
        sys.import_certificates(r, certs.clone()).unwrap();
    }
    sys.run_to_quiescence(64).unwrap();
    let digests = certs.iter().map(|c| c.digest()).collect();
    (sys, hub, digests)
}

/// Revoke the next certificate and quiesce (the gossip repair, when
/// enabled, runs inside the same call).
fn revoke_iteration(sys: &mut System, hub: Principal, digests: &[CertDigest], round: usize) {
    sys.revoke_certificate(hub, digests[round % digests.len()])
        .unwrap();
    sys.run_to_quiescence(400).unwrap();
}

/// Stores (hub excluded) still holding `digest` active.
fn divergent(sys: &System, digest: &CertDigest) -> usize {
    sys.principals()
        .iter()
        .filter(|p| sys.cert_store(**p).unwrap().status(digest) == Some(CertStatus::Active))
        .count()
}

fn gossip_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gossip");
    group.sample_size(10);

    for &pct in DROP_PCTS {
        let (mut sys, hub, digests) = fanout_system(pct, true);
        let round = Cell::new(0usize);
        group.bench_with_input(
            BenchmarkId::new("revoke_converge_gossip", pct),
            &pct,
            |b, _| {
                b.iter(|| {
                    let r = round.get();
                    round.set(r + 1);
                    revoke_iteration(&mut sys, hub, &digests, r);
                });
            },
        );
    }
    group.finish();

    // The ablation proper, measured outside the timing loop: one
    // deployment per loss rate, 8 revocations each, baseline vs
    // gossip. Deterministic (seeded by loss rate), so the summary
    // lines are reproducible.
    const REVS: usize = 8;
    let mut report = Report::new("gossip")
        .note(
            "workload",
            &format!("{PRINCIPALS} principals, {REVS} revocations per loss rate"),
        )
        .note(
            "cores",
            &std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .to_string(),
        );
    for &pct in DROP_PCTS {
        // Baseline: broadcast only. Count stores left divergent.
        let (mut base, hub, digests) = fanout_system(pct, false);
        for r in 0..REVS {
            revoke_iteration(&mut base, hub, &digests, r);
        }
        let stuck: usize = digests[..REVS].iter().map(|d| divergent(&base, d)).sum();
        persist_line(&format!(
            "gossip-baseline  drop={:.2} divergent={stuck}/{} stores x revocations left \
             accepting a revoked credential (broadcast only)",
            f64::from(pct) / 100.0,
            REVS * (PRINCIPALS - 1),
        ));

        // Gossip: same loss rate; every store converges. Report the
        // repair cost per revocation.
        let (mut sys, hub, digests) = fanout_system(pct, true);
        let before = sys.stats();
        let net_before = sys.net_stats();
        for r in 0..REVS {
            revoke_iteration(&mut sys, hub, &digests, r);
        }
        let remaining: usize = digests[..REVS].iter().map(|d| divergent(&sys, d)).sum();
        assert_eq!(remaining, 0, "gossip must converge every store");
        let stats = sys.stats();
        let net = sys.net_stats();
        assert_eq!(
            stats.messages_sent,
            net.sent - net.dropped - net.blackholed,
            "system and network ledgers must reconcile"
        );
        let rounds_per_rev = (stats.gossip_rounds - before.gossip_rounds) as f64 / REVS as f64;
        let msgs_per_rev = (net.sent - net_before.sent) as f64 / REVS as f64;
        persist_line(&format!(
            "gossip-converge  drop={:.2} rounds/rev={rounds_per_rev:.1} summaries={} pulls={} \
             served={} msgs/rev={msgs_per_rev:.1} ({} principals, 0 divergent)",
            f64::from(pct) / 100.0,
            stats.gossip_summaries - before.gossip_summaries,
            stats.gossip_pulls - before.gossip_pulls,
            stats.gossip_served - before.gossip_served,
            PRINCIPALS,
        ));
        report = report
            .headline(&format!("baseline_divergent_drop{pct}"), stuck as f64)
            .headline(&format!("rounds_per_rev_drop{pct}"), rounds_per_rev)
            .headline(&format!("msgs_per_rev_drop{pct}"), msgs_per_rev);
        // The lossiest sweep is the one whose phase breakdown matters:
        // its quiescence runs carry the full anti-entropy repair.
        if pct == *DROP_PCTS.last().unwrap() {
            report = report.phases_from(sys.obs_registry());
        }
    }

    // Partition-duration axis: at a fixed 10% loss, blackhole the
    // hub <-> m15 link for `dur` steps spanning a revocation and count
    // the gossip rounds anti-entropy needs to heal the cut-off store.
    // dur=0 is the control (no partition). Deterministic: the network
    // RNG is seeded by the loss rate and partitions consume no rolls.
    const PARTITION_DURATIONS: &[u64] = &[0, 2, 6];
    report = report.note(
        "partition_axis",
        &format!(
            "hub<->m{} cut bidirectionally for each duration (steps) at drop=0.10; \
             rounds counted over one revocation; single-threaded quiesce loop, so \
             host core count affects wall time only, never the round counts",
            PRINCIPALS - 1
        ),
    );
    for &dur in PARTITION_DURATIONS {
        let (mut sys, hub, digests) = fanout_system(10, true);
        let before = sys.stats();
        if dur > 0 {
            let hub_node = NodeId::new("n0");
            let far = NodeId::new(&format!("m{}", PRINCIPALS - 1));
            let heal_at = Some(sys.network_mut().step() + dur);
            sys.network_mut().partition(hub_node, far, heal_at);
            sys.network_mut().partition(far, hub_node, heal_at);
        }
        revoke_iteration(&mut sys, hub, &digests, 0);
        assert_eq!(
            divergent(&sys, &digests[0]),
            0,
            "gossip must heal the partitioned store"
        );
        assert_eq!(
            sys.network_mut().active_partitions(),
            0,
            "timed partitions must have healed"
        );
        let rounds = (sys.stats().gossip_rounds - before.gossip_rounds) as f64;
        persist_line(&format!(
            "gossip-partition drop=0.10 partition_steps={dur} heal_rounds={rounds:.0} \
             blackholed={} ({} principals, 0 divergent)",
            sys.net_stats().blackholed,
            PRINCIPALS,
        ));
        report = report.headline(&format!("partition_heal_rounds_dur{dur}"), rounds);
    }

    if let Err(e) = report.write_at_repo_root() {
        eprintln!("[obs] BENCH_gossip.json not written: {e}");
    }
}

criterion_group!(benches, gossip_convergence);
criterion_main!(benches);
