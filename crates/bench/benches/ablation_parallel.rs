//! Experiment A10: the sharded quiescence engine. Two fan-out
//! workloads over a 32-principal deployment, swept across 1/2/4/8
//! worker shards:
//!
//! * **fanout_chain** — a hub `says` a fresh 12-edge chain to every
//!   receiver each iteration; receivers fold the said edges into a
//!   local transitive closure. Phase-1/phase-3 evaluation work is
//!   embarrassingly parallel across the 31 receivers.
//! * **fanout_revocation** — the hub revokes a batch of certificates
//!   every iteration; the broadcast fans out to 31 receiving stores,
//!   each verifying, transitioning and DRed-retracting in its
//!   destination shard.
//!
//! A `parallel-scaling` summary (speedup of each shard count over the
//! serial engine) is appended to `target/criterion/summary.txt`, the
//! artifact CI archives. Scaling tracks the host's core count: on a
//! single-core container every shard count measures ~1x — run on a
//! multi-core host to see the delivery phase spread out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::datalog::Symbol;
use lbtrust::obs::Report;
use lbtrust::{AuthScheme, PartitionStrategy, Principal, SyncPolicy, System};
use lbtrust_bench::persist_line;
use std::cell::Cell;
use std::time::{Duration, Instant};

/// Principals in the deployment (1 hub + N-1 receivers).
const PRINCIPALS: usize = 32;
/// Edges in each iteration's fresh said-chain.
const CHAIN: usize = 12;
/// Certificates revoked per iteration of the revocation workload.
const REVOKE_BATCH: usize = 4;
/// Revocation batches pre-issued per system (one per iteration; the
/// shim caps samples at 30 plus one warmup).
const REVOKE_BATCHES: usize = 36;

/// A hub-and-receivers system on Plaintext auth (no signing cost, so
/// the measured work is evaluation + delivery, the phases the shards
/// split). Receivers run the said-edge transitive closure.
fn fanout_chain_system(shards: usize) -> (System, Principal) {
    let mut sys = System::new()
        .with_rsa_bits(512)
        .with_shards(shards)
        .with_sync_policy(SyncPolicy::Batched);
    let hub = sys.add_principal("hub", "n0").unwrap();
    let receivers: Vec<String> = (1..PRINCIPALS).map(|i| format!("r{i}")).collect();
    for (i, name) in receivers.iter().enumerate() {
        let p = sys.add_principal(name, &format!("m{i}")).unwrap();
        sys.set_auth_scheme(p, AuthScheme::Plaintext).unwrap();
        sys.workspace_mut(p)
            .unwrap()
            .load(
                "policy",
                "edge(X,Y) <- says(hub,me,[| ledge(X,Y) |]).\n\
                 reach(X,Y) <- edge(X,Y).\n\
                 reach(X,Z) <- reach(X,Y), edge(Y,Z).\n",
            )
            .unwrap();
    }
    sys.set_auth_scheme(hub, AuthScheme::Plaintext).unwrap();
    for name in &receivers {
        sys.workspace_mut(hub)
            .unwrap()
            .load(
                "policy",
                &format!("says(me,{name},[| ledge(X,Y). |]) <- vedge(X,Y)."),
            )
            .unwrap();
    }
    sys.run_to_quiescence(8).unwrap();
    (sys, hub)
}

/// One iteration of the chain workload: a fresh uniquely-named chain
/// asserted at the hub, then quiescence (ships ~31x12 messages, one
/// batched import evaluation per receiver).
fn chain_iteration(sys: &mut System, hub: Principal, round: usize) {
    let facts: String = (0..CHAIN)
        .map(|k| format!("vedge(c{round}e{k},c{round}e{k2}). ", k2 = k + 1))
        .collect();
    sys.workspace_mut(hub).unwrap().assert_src(&facts).unwrap();
    sys.run_to_quiescence(8).unwrap();
}

/// A hub-and-receivers system where every receiver imported the same
/// pre-issued certificates (RSA-backed; verification amortized through
/// the shared cache), ready for batch-by-batch revocation.
fn fanout_revocation_system(
    shards: usize,
) -> (System, Principal, Vec<lbtrust::certstore::CertDigest>) {
    let mut sys = System::new()
        .with_rsa_bits(512)
        .with_shards(shards)
        .with_sync_policy(SyncPolicy::Batched);
    let hub = sys.add_principal("hub", "n0").unwrap();
    let receivers: Vec<Principal> = (1..PRINCIPALS)
        .map(|i| {
            sys.add_principal(&format!("r{i}"), &format!("m{i}"))
                .unwrap()
        })
        .collect();
    let facts: String = (0..REVOKE_BATCHES * REVOKE_BATCH)
        .map(|i| format!("good(p{i}). "))
        .collect();
    let certs = sys.issue_certificates(hub, &facts, &[], None).unwrap();
    for &r in &receivers {
        sys.workspace_mut(r)
            .unwrap()
            .load("policy", "access(P,f,read) <- says(hub,me,[| good(P) |]).")
            .unwrap();
        sys.import_certificates(r, certs.clone()).unwrap();
    }
    sys.run_to_quiescence(8).unwrap();
    let digests = certs.iter().map(|c| c.digest()).collect();
    (sys, hub, digests)
}

/// One iteration: revoke the next batch and quiesce — 31 receiving
/// stores apply each revocation and DRed-retract its conclusions.
fn revocation_iteration(
    sys: &mut System,
    hub: Principal,
    digests: &[lbtrust::certstore::CertDigest],
    round: usize,
) {
    let start = (round * REVOKE_BATCH) % digests.len();
    for d in &digests[start..start + REVOKE_BATCH] {
        sys.revoke_certificate(hub, *d).unwrap();
    }
    sys.run_to_quiescence(8).unwrap();
}

/// Spokes in the skewed workload (so the deployment is 32 principals,
/// like the balanced sweeps).
const SKEW_SPOKES: usize = 31;
/// Edges in each iteration's fresh chain at the hub.
const SKEW_CHAIN: usize = 16;
/// Iterations per skewed pass.
const SKEW_ROUNDS: usize = 8;
/// Worker count for the skew comparison.
const SKEW_SHARDS: usize = 8;

/// A deliberately skewed deployment: the hub runs a transitive closure
/// over each iteration's fresh chain and exports the reachable set to
/// all 31 spokes; each spoke holds one import rule. Roughly half the
/// per-step evaluation cost lands on one principal — the shape where a
/// contiguous slice pins the whole step on the hub's worker while the
/// other seven idle, and cost-aware LPT plus stealing spreads the
/// remainder.
fn skewed_hub_system(
    shards: usize,
    partition: PartitionStrategy,
    stealing: bool,
) -> (System, Principal) {
    let mut sys = System::new()
        .with_rsa_bits(512)
        .with_shards(shards)
        .with_partition(partition)
        .with_stealing(stealing)
        .with_sync_policy(SyncPolicy::Batched);
    let hub = sys.add_principal("hub", "n0").unwrap();
    sys.set_auth_scheme(hub, AuthScheme::Plaintext).unwrap();
    for i in 0..SKEW_SPOKES {
        let p = sys
            .add_principal(&format!("s{i}"), &format!("m{i}"))
            .unwrap();
        sys.set_auth_scheme(p, AuthScheme::Plaintext).unwrap();
        sys.workspace_mut(p)
            .unwrap()
            .load("policy", "got(X) <- says(hub,me,[| good(X) |]).")
            .unwrap();
        sys.workspace_mut(hub)
            .unwrap()
            .load(
                "policy",
                &format!("says(me,s{i},[| good(Y). |]) <- payload(Y)."),
            )
            .unwrap();
    }
    sys.workspace_mut(hub)
        .unwrap()
        .load(
            "policy",
            "reach(X,Y) <- edge(X,Y).\n\
             reach(X,Z) <- reach(X,Y), edge(Y,Z).\n\
             payload(Y) <- start(X), reach(X,Y).\n",
        )
        .unwrap();
    sys.run_to_quiescence(8).unwrap();
    (sys, hub)
}

/// One skewed iteration: a fresh chain plus its start marker asserted
/// at the hub, then quiescence. The hub's closure is quadratic in the
/// chain; each spoke's import is linear.
fn skew_iteration(sys: &mut System, hub: Principal, round: usize) {
    let mut facts: String = (0..SKEW_CHAIN)
        .map(|k| format!("edge(c{round}e{k},c{round}e{k2}). ", k2 = k + 1))
        .collect();
    facts.push_str(&format!("start(c{round}e0)."));
    sys.workspace_mut(hub).unwrap().assert_src(&facts).unwrap();
    sys.run_to_quiescence(8).unwrap();
}

fn speedup_at(means: &[(usize, Duration)], shards: usize) -> Option<f64> {
    let serial = means.iter().find(|(s, _)| *s == 1)?.1;
    let at = means.iter().find(|(s, _)| *s == shards)?.1;
    Some(serial.as_secs_f64() / at.as_secs_f64().max(1e-12))
}

fn report_scaling(workload: &str, means: &[(usize, Duration)]) {
    let Some(&(_, serial)) = means.iter().find(|(s, _)| *s == 1) else {
        return;
    };
    for &(shards, mean) in means {
        let speedup = serial.as_secs_f64() / mean.as_secs_f64().max(1e-12);
        persist_line(&format!(
            "parallel-scaling {workload:<24} shards={shards} {:>10.3} ms/iter {speedup:>6.2}x vs serial ({} principals, {} cores)",
            mean.as_secs_f64() * 1e3,
            PRINCIPALS,
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ));
    }
}

fn sharded_quiescence(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);

    let mut chain_means: Vec<(usize, Duration)> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let (mut sys, hub) = fanout_chain_system(shards);
        let round = Cell::new(0usize);
        group.bench_with_input(BenchmarkId::new("fanout_chain", shards), &shards, |b, _| {
            b.iter(|| {
                let r = round.get();
                round.set(r + 1);
                chain_iteration(&mut sys, hub, r);
            });
            chain_means.push((shards, b.mean));
        });
    }

    let mut revoke_means: Vec<(usize, Duration)> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let (mut sys, hub, digests) = fanout_revocation_system(shards);
        let round = Cell::new(0usize);
        group.bench_with_input(
            BenchmarkId::new("fanout_revocation", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    let r = round.get();
                    round.set(r + 1);
                    revocation_iteration(&mut sys, hub, &digests, r);
                });
                revoke_means.push((shards, b.mean));
            },
        );
    }
    group.finish();

    report_scaling("fanout_chain", &chain_means);
    report_scaling("fanout_revocation", &revoke_means);

    // Sanity for the equivalence claim the proptest pins down in
    // miniature: a serial and an 8-shard run of the same chain
    // iteration leave identical receiver states.
    let (mut a, hub_a) = fanout_chain_system(1);
    let (mut b, hub_b) = fanout_chain_system(8);
    chain_iteration(&mut a, hub_a, 9999);
    chain_iteration(&mut b, hub_b, 9999);
    let reach = Symbol::intern("reach");
    let r1 = Symbol::intern("r1");
    assert_eq!(
        a.workspace(r1).unwrap().tuples(reach).len(),
        b.workspace(r1).unwrap().tuples(reach).len(),
        "serial and sharded engines must derive the same closure"
    );

    // Obs-overhead microbench, outside the criterion loop: the same
    // 8-shard chain workload with phase timing off / on / off. The two
    // disabled passes bound the run-to-run noise on this host; the
    // disabled path costs one branch per phase, so its overhead must
    // sit inside that noise band (<2% is the acceptance bar, on a
    // quiet host).
    const OBS_ROUNDS: usize = 12;
    let pass = |timing: bool, base: usize| {
        let (mut sys, hub) = fanout_chain_system(8);
        sys.set_phase_timing(timing);
        let started = Instant::now();
        for r in 0..OBS_ROUNDS {
            chain_iteration(&mut sys, hub, base + r);
        }
        (started.elapsed(), sys)
    };
    let (off_a, _) = pass(false, 20_000);
    let (timing_on, timed) = pass(true, 21_000);
    let (off_b, _) = pass(false, 22_000);
    let timing_off = (off_a + off_b) / 2;
    let overhead_pct =
        (timing_on.as_secs_f64() / timing_off.as_secs_f64().max(1e-12) - 1.0) * 100.0;
    let noise_pct = ((off_a.as_secs_f64() - off_b.as_secs_f64()).abs()
        / timing_off.as_secs_f64().max(1e-12))
        * 100.0;
    persist_line(&format!(
        "parallel-obs-overhead timing on {:.3}ms vs off {:.3}ms ({overhead_pct:+.2}%, \
         off/off noise {noise_pct:.2}%) over {OBS_ROUNDS} iterations",
        timing_on.as_secs_f64() * 1e3,
        timing_off.as_secs_f64() * 1e3,
    ));

    // Skewed hub-and-spoke: the contiguous-slice no-stealing engine
    // (the old sharding discipline) against the pooled engine with
    // cost-aware LPT partitioning and work stealing, both at 8
    // workers. The speedup and imbalance bars only mean anything when
    // the host actually has a core per worker, so on smaller hosts the
    // assertions are skipped — loudly, in the summary artifact.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let skew_pass = |partition: PartitionStrategy, stealing: bool, base: usize| {
        let (mut sys, hub) = skewed_hub_system(SKEW_SHARDS, partition, stealing);
        let started = Instant::now();
        for r in 0..SKEW_ROUNDS {
            skew_iteration(&mut sys, hub, base + r);
        }
        (started.elapsed(), sys)
    };
    let (contiguous_time, _) = skew_pass(PartitionStrategy::Contiguous, false, 30_000);
    let (pooled_time, pooled_sys) = skew_pass(PartitionStrategy::CostAware, true, 40_000);
    let skew_speedup = contiguous_time.as_secs_f64() / pooled_time.as_secs_f64().max(1e-12);
    let snap = pooled_sys.obs_registry().snapshot();
    let imbalance_ratio = snap.gauge("quiesce.imbalance_ratio").unwrap_or(0) as f64 / 1000.0;
    let steals = snap.counter("pool.steals").unwrap_or(0);
    let assertions = if cores >= SKEW_SHARDS {
        assert!(
            skew_speedup >= 1.5,
            "pooled+stealing must beat the contiguous-slice baseline by >=1.5x \
             on a skewed workload with a core per worker (got {skew_speedup:.2}x)"
        );
        assert!(
            imbalance_ratio < 1.5,
            "cost-aware LPT + stealing must keep max/mean worker busy time \
             under 1.5 (got {imbalance_ratio:.2})"
        );
        "enforced".to_string()
    } else {
        format!("SKIPPED (cores={cores} < shards={SKEW_SHARDS})")
    };
    persist_line(&format!(
        "parallel-skewed hub+{SKEW_SPOKES} spokes shards={SKEW_SHARDS}: contiguous \
         {:.3} ms/iter vs pooled {:.3} ms/iter ({skew_speedup:.2}x), \
         imbalance_ratio {imbalance_ratio:.2}, steals {steals}; \
         speedup/imbalance assertions {assertions}",
        contiguous_time.as_secs_f64() * 1e3 / SKEW_ROUNDS as f64,
        pooled_time.as_secs_f64() * 1e3 / SKEW_ROUNDS as f64,
    ));

    // The perf trajectory: headline speedups plus the phase breakdown
    // of the instrumented 8-shard run (including per-shard fixpoint
    // time), written as BENCH_parallel.json at the repo root.
    let mut report = Report::new("parallel")
        .headline(
            "chain_speedup_8shards",
            speedup_at(&chain_means, 8).unwrap_or(1.0),
        )
        .headline(
            "revocation_speedup_8shards",
            speedup_at(&revoke_means, 8).unwrap_or(1.0),
        )
        .headline("obs_overhead_pct", overhead_pct)
        .headline("obs_noise_pct", noise_pct)
        .headline("skew_speedup_pooled_vs_contiguous", skew_speedup)
        .headline("imbalance_ratio", imbalance_ratio)
        .headline("steals", steals as f64)
        .phases_from(timed.obs_registry())
        .note(
            "workload",
            &format!("fanout chain + revocation, {PRINCIPALS} principals, shards swept 1/2/4/8"),
        )
        .note("cores", &cores.to_string())
        .note("skew_assertions", &assertions);
    if let Some(&(_, serial)) = chain_means.iter().find(|(s, _)| *s == 1) {
        report = report.headline("chain_ms_per_iter_serial", serial.as_secs_f64() * 1e3);
    }
    if let Err(e) = report.write_at_repo_root() {
        eprintln!("[obs] BENCH_parallel.json not written: {e}");
    }
}

criterion_group!(benches, sharded_quiescence);
criterion_main!(benches);
