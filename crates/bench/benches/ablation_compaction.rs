//! Experiment A11: the segmented log lifecycle. A store is churned
//! through `mult` rounds of import-then-revoke history (only the last
//! round's survivors stay live), then measured two ways:
//!
//! * **reopen_uncompacted** — `CertStore::open` replays the full
//!   history: cost grows with `mult`.
//! * **reopen_compacted** — the same store after `compact()`: replay is
//!   checkpoint + suffix, independent of `mult`.
//!
//! A `compaction` summary (disk footprint uncompacted vs compacted,
//! shrink factor, replayed record counts) is appended to
//! `target/criterion/summary.txt`, the artifact CI archives, alongside
//! the `StoreStats` observability counters (`segments` / `live_bytes`
//! / `dead_bytes` / `compactions` / `replayed_from_checkpoint`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::certstore::{shared_verify_cache, CertStore, LinkedCert};
use lbtrust::obs::{Registry, Report};
use lbtrust::System;
use lbtrust_bench::persist_line;
use std::path::PathBuf;

/// Certificates churned per history round.
const ROUND_CERTS: usize = 16;
/// Certificates of the final round left alive.
const SURVIVORS: usize = 4;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("bench-compaction-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench tmpdir");
    dir
}

/// Issues `mult * ROUND_CERTS` distinct certificates (RSA-512 keys for
/// bench speed; replay cost is independent of key size).
fn issue_rounds(sys: &mut System, alice: lbtrust::Principal, mult: usize) -> Vec<Vec<LinkedCert>> {
    (0..mult)
        .map(|round| {
            let facts: String = (0..ROUND_CERTS)
                .map(|i| format!("good(r{round}p{i}). "))
                .collect();
            sys.issue_certificates(alice, &facts, &[], None).unwrap()
        })
        .collect()
}

/// Churns one store through the rounds: every round's certificates are
/// imported and (except the final round's survivors) revoked, with
/// clock ticks between rounds — the ≥90%-dead history the compactor
/// exists for. Returns the record-segment footprint in bytes.
fn churn(store: &mut CertStore, sys: &System, rounds: &[Vec<LinkedCert>]) -> u64 {
    let verifier = sys.key_verifier();
    let last = rounds.len() - 1;
    for (round, certs) in rounds.iter().enumerate() {
        for cert in certs {
            store.insert(cert.clone(), &verifier).unwrap();
        }
        let keep = if round == last { SURVIVORS } else { 0 };
        for cert in &certs[keep..] {
            // Issue a real signed revocation through the system's keys.
            let signing = lbtrust_net::revoke_signing_bytes(cert.issuer, cert.digest().as_bytes());
            let signature = {
                let guard = sys.keys().read();
                guard
                    .rsa(cert.issuer)
                    .unwrap()
                    .private
                    .sign(&signing)
                    .unwrap()
            };
            store
                .revoke(
                    &lbtrust::certstore::Revocation {
                        issuer: cert.issuer,
                        target: cert.digest(),
                        signature,
                    },
                    &verifier,
                )
                .unwrap();
        }
        store.advance_clock(1).unwrap();
    }
    store.sync().unwrap();
    let stats = store.stats();
    stats.live_bytes + stats.dead_bytes
}

fn compaction_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_compaction");
    group.sample_size(10);

    let mut sys = System::new().with_rsa_bits(512);
    let alice = sys.add_principal("alice", "n1").unwrap();

    // One registry across the sweep: the final reopens below route
    // their lifecycle spans (storelog.replay_ns, replayed bytes) here,
    // so BENCH_compaction.json carries a replay-phase breakdown.
    let registry = Registry::new();
    let mut report = Report::new("compaction")
        .note(
            "workload",
            &format!("{ROUND_CERTS} certs/round, {SURVIVORS} survivors, history swept 1x/4x/16x"),
        )
        .note(
            "cores",
            &std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .to_string(),
        );

    for &mult in &[1usize, 4, 16] {
        let dir = tmp_dir(&format!("hist{mult}"));
        let rounds = issue_rounds(&mut sys, alice, mult);

        // Uncompacted history.
        let path_u = dir.join("uncompacted.certlog");
        let bytes_u = {
            let mut store =
                CertStore::open_with_budget(&path_u, shared_verify_cache(), 8 * 1024).unwrap();
            churn(&mut store, &sys, &rounds)
        };

        // Identical history, compacted.
        let path_c = dir.join("compacted.certlog");
        let (bytes_c, stats_c) = {
            let mut store =
                CertStore::open_with_budget(&path_c, shared_verify_cache(), 8 * 1024).unwrap();
            churn(&mut store, &sys, &rounds);
            let report = store.compact().unwrap();
            assert!(report.performed);
            (report.bytes_after, store.stats())
        };

        group.bench_with_input(
            BenchmarkId::new("reopen_uncompacted", mult),
            &mult,
            |b, _| {
                b.iter(|| {
                    let store = CertStore::open(&path_u, shared_verify_cache()).unwrap();
                    assert_eq!(store.active_len(), SURVIVORS);
                    store.replay_report().records
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("reopen_compacted", mult), &mult, |b, _| {
            b.iter(|| {
                let store = CertStore::open(&path_c, shared_verify_cache()).unwrap();
                assert_eq!(store.active_len(), SURVIVORS);
                store.replay_report().records
            })
        });

        let replayed_u = CertStore::open_with_obs(&path_u, shared_verify_cache(), None, &registry)
            .unwrap()
            .replay_report()
            .records;
        let reopened_c =
            CertStore::open_with_obs(&path_c, shared_verify_cache(), None, &registry).unwrap();
        let replayed_c = reopened_c.replay_report().records;
        assert!(reopened_c.replay_report().from_checkpoint);
        report = report
            .headline(
                &format!("shrink_factor_{mult}x"),
                bytes_u as f64 / bytes_c.max(1) as f64,
            )
            .headline(&format!("replayed_uncompacted_{mult}x"), replayed_u as f64)
            .headline(&format!("replayed_compacted_{mult}x"), replayed_c as f64);
        persist_line(&format!(
            "compaction history={mult:>2}x records {bytes_u:>8}B -> {bytes_c:>6}B ({:>4.1}x) \
             replayed {replayed_u:>4} -> {replayed_c} \
             [segments={} live={}B dead={}B compactions={} from_ckpt={}]",
            bytes_u as f64 / bytes_c.max(1) as f64,
            stats_c.segments,
            stats_c.live_bytes,
            stats_c.dead_bytes,
            stats_c.compactions,
            reopened_c.stats().replayed_from_checkpoint,
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();

    if let Err(e) = report.phases_from(&registry).write_at_repo_root() {
        eprintln!("[obs] BENCH_compaction.json not written: {e}");
    }
}

criterion_group!(benches, compaction_lifecycle);
criterion_main!(benches);
