//! Experiments A3/A4: delegation chain depth and threshold (k-of-n)
//! scaling for the §4.2 constructs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust::Workspace;
use lbtrust_datalog::{Symbol, Value};

/// Chain of `k` re-delegations with depth budgets, fully local (one
/// workspace) so the bench isolates the rule engine, not the network.
fn delegation_chain(k: usize) -> Workspace {
    let mut ws = Workspace::new("root");
    ws.load("deleg", lbtrust::delegation::DELEGATES).unwrap();
    ws.assert_fact(Symbol::intern("prin"), vec![Value::sym("root")]);
    // Fan-out: root delegates to p0 .. pk. The del1 meta-rule generates
    // one activation rule per delegation.
    for i in 0..k {
        ws.assert_fact(Symbol::intern("prin"), vec![Value::sym(&format!("p{i}"))]);
        ws.assert_fact(
            Symbol::intern("delegates"),
            vec![
                Value::sym("root"),
                Value::sym(&format!("p{i}")),
                Value::sym("perm"),
            ],
        );
    }
    ws
}

fn chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delegation_depth");
    group.sample_size(10);
    for &k in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("delegations", k), &k, |b, &k| {
            b.iter(|| {
                let mut ws = delegation_chain(k);
                ws.evaluate().unwrap();
                ws.active_rules().len()
            })
        });
    }
    group.finish();
}

/// Threshold agreement: n voters, threshold k = n/2, single workspace
/// aggregation (A4). A bare workspace isolates the count aggregation
/// from the network/auth pipeline.
fn threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_threshold");
    group.sample_size(10);
    for &n in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("k_of_n", n), &n, |b, &n| {
            b.iter(|| {
                let mut ws = Workspace::new("bank");
                ws.load(
                    "th",
                    &lbtrust::delegation::threshold_rules("grp", "ok", n / 2),
                )
                .unwrap();
                for i in 0..n {
                    let member = Value::sym(&format!("v{i}"));
                    ws.assert_fact(
                        Symbol::intern("pringroup"),
                        vec![member.clone(), Value::sym("grp")],
                    );
                    ws.assert_fact(
                        Symbol::intern("says"),
                        vec![
                            member,
                            Value::sym("bank"),
                            Value::Quote(std::sync::Arc::new(
                                lbtrust_datalog::parse_rule("ok(cust).").unwrap(),
                            )),
                        ],
                    );
                }
                ws.evaluate().unwrap();
                ws.holds_src("ok(cust)").unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, chain_depth, threshold);
criterion_main!(benches);
