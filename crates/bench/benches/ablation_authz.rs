//! Experiment A11: the concurrent authorization read front-end. A
//! hub-and-receivers deployment where 1/2/4/8 reader threads sweep a
//! goal pool through `AuthzReader::authorize` — lock-free over
//! atomically published snapshots, behind the versioned decision
//! cache — while the writer thread streams certificate imports and
//! revocations through repeated quiescence runs (each one publishing a
//! fresh snapshot and surgically invalidating the poisoned decisions).
//!
//! Headlines land in `BENCH_authz.json` at the repo root: `qps_N` for
//! each reader count, the serial `System::authorize` baseline, and the
//! decision-cache hit rate under the revocation stream. The scaling
//! assertion (>=1.5x at 4 readers vs 1) only means anything with a
//! core per reader plus one for the writer, so on smaller hosts it is
//! skipped — loudly, in the JSON notes.

use criterion::{criterion_group, criterion_main, Criterion};
use lbtrust::certstore::CertDigest;
use lbtrust::obs::Report;
use lbtrust::{Principal, System};
use lbtrust_bench::persist_line;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Receivers importing the certificate pool (plus the issuing hub).
const RECEIVERS: usize = 4;
/// Certificates pre-issued at the hub; the revocation stream retires
/// them one per wave.
const POOL: usize = 128;
/// Subjects in the readers' goal sweep: a mix of certificates the
/// stream will kill and certificates that stay live (cache-friendly).
const GOAL_SUBJECTS: usize = 32;
/// Reader-thread counts swept.
const READERS: [usize; 4] = [1, 2, 4, 8];

/// Hub + receivers, every receiver holding the access policy and the
/// full certificate pool, quiesced and ready for the stream.
fn authz_system() -> (System, Principal, Vec<Principal>, Vec<CertDigest>) {
    let mut sys = System::new().with_rsa_bits(512);
    let hub = sys.add_principal("hub", "n0").unwrap();
    let recs: Vec<Principal> = (0..RECEIVERS)
        .map(|i| {
            sys.add_principal(&format!("r{i}"), &format!("m{i}"))
                .unwrap()
        })
        .collect();
    let facts: String = (0..POOL).map(|i| format!("good(p{i}). ")).collect();
    let certs = sys.issue_certificates(hub, &facts, &[], None).unwrap();
    let digests: Vec<CertDigest> = certs.iter().map(|c| c.digest()).collect();
    for &r in &recs {
        sys.workspace_mut(r)
            .unwrap()
            .load("policy", "access(P,f,read) <- says(hub,me,[| good(P) |]).")
            .unwrap();
        sys.import_certificates(r, certs.clone()).unwrap();
    }
    sys.run_to_quiescence(16).unwrap();
    (sys, hub, recs, digests)
}

/// One measured pass: `n` reader threads sweep the goal pool while the
/// writer streams revocations (and periodic fresh imports) for
/// `window`, publishing after every quiescence. Returns queries/sec.
fn reader_pass(n: usize, window: Duration) -> f64 {
    let (mut sys, hub, recs, digests) = authz_system();
    let reader = sys.authz_reader();
    let goals: Vec<String> = (0..GOAL_SUBJECTS)
        .map(|i| format!("access(p{i},f,read)"))
        .collect();
    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);

    let started = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        for t in 0..n {
            let reader = reader.clone();
            let stop = &stop;
            let queries = &queries;
            let goals = &goals;
            let recs = &recs;
            scope.spawn(move || {
                let mut local = 0u64;
                let mut i = t; // offset so threads spread over the pool
                while !stop.load(Ordering::Relaxed) {
                    let r = recs[i % recs.len()];
                    let g = &goals[i % goals.len()];
                    reader.authorize(r, g).unwrap();
                    local += 1;
                    i += 1;
                }
                queries.fetch_add(local, Ordering::Relaxed);
            });
        }

        // The writer: one revocation per wave (a retraction-only window
        // for most publishes — the precise-invalidation path), a fresh
        // import every fourth wave (a version-bumping change), and a
        // snapshot publish at every quiescence.
        let mut wave = 0usize;
        while started.elapsed() < window && wave < digests.len() {
            sys.revoke_certificate(hub, digests[wave]).unwrap();
            if wave % 4 == 3 {
                let cert = sys
                    .issue_certificate(hub, &format!("good(x{wave})."), &[], None)
                    .unwrap();
                sys.import_certificates(recs[wave % recs.len()], vec![cert])
                    .unwrap();
            }
            sys.run_to_quiescence(16).unwrap();
            wave += 1;
        }
        let elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        elapsed
    });

    queries.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// The cache-facing pass: like `reader_pass` at 4 readers, but returns
/// the decision-cache hit rate accumulated over the whole stream.
fn cache_pass(window: Duration) -> f64 {
    let (mut sys, hub, recs, digests) = authz_system();
    let reader = sys.authz_reader();
    let goals: Vec<String> = (0..GOAL_SUBJECTS)
        .map(|i| format!("access(p{i},f,read)"))
        .collect();
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let reader = reader.clone();
            let stop = &stop;
            let goals = &goals;
            let recs = &recs;
            scope.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    reader
                        .authorize(recs[i % recs.len()], &goals[i % goals.len()])
                        .unwrap();
                    i += 1;
                }
            });
        }
        let mut wave = 0usize;
        while started.elapsed() < window && wave < digests.len() {
            sys.revoke_certificate(hub, digests[wave]).unwrap();
            sys.run_to_quiescence(16).unwrap();
            wave += 1;
        }
        stop.store(true, Ordering::Relaxed);
    });
    let snap = sys.obs_registry().snapshot();
    let hits = snap.counter("authz.cache_hits").unwrap_or(0) as f64;
    let misses = snap.counter("authz.cache_misses").unwrap_or(0) as f64;
    hits / (hits + misses).max(1.0)
}

/// Serial baseline: `System::authorize` (no cache, live workspaces)
/// sweeping the same goal pool single-threaded, no stream.
fn serial_pass(window: Duration) -> f64 {
    let (sys, _hub, recs, _digests) = authz_system();
    let goals: Vec<String> = (0..GOAL_SUBJECTS)
        .map(|i| format!("access(p{i},f,read)"))
        .collect();
    let started = Instant::now();
    let mut queries = 0u64;
    let mut i = 0usize;
    while started.elapsed() < window {
        sys.authorize(recs[i % recs.len()], &goals[i % goals.len()])
            .unwrap();
        queries += 1;
        i += 1;
    }
    queries as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

fn authz_read_path(_c: &mut Criterion) {
    // The sweep is self-timed (threads + a duration window don't fit
    // the shim's iteration loop); `--test` shrinks the window so CI's
    // bench-smoke exercises every path quickly.
    let smoke = std::env::args().any(|a| a == "--test");
    let window = if smoke {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(600)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut qps: Vec<(usize, f64)> = Vec::new();
    for &n in &READERS {
        let rate = reader_pass(n, window);
        persist_line(&format!(
            "authz-read readers={n} {rate:>12.0} qps under revocation stream ({cores} cores)"
        ));
        qps.push((n, rate));
    }
    let qps_at = |n: usize| qps.iter().find(|(k, _)| *k == n).map_or(0.0, |(_, q)| *q);
    let scaling_4 = qps_at(4) / qps_at(1).max(1e-9);

    let hit_rate = cache_pass(window);
    let qps_serial = serial_pass(window);
    persist_line(&format!(
        "authz-read serial baseline {qps_serial:>12.0} qps, cache hit rate {:.1}% over stream",
        hit_rate * 100.0
    ));

    // Core-honesty gate: 4 readers + the writer need 5 cores before
    // the scaling bar is meaningful.
    let assertions = if cores >= 5 {
        assert!(
            scaling_4 >= 1.5,
            "4 reader threads must deliver >=1.5x the single-reader qps \
             with a core per thread (got {scaling_4:.2}x)"
        );
        "enforced".to_string()
    } else {
        format!("SKIPPED (cores={cores} < 5)")
    };
    persist_line(&format!(
        "authz-read scaling 4v1 {scaling_4:.2}x; assertion {assertions}"
    ));

    let mut report = Report::new("authz")
        .headline("qps_serial", qps_serial)
        .headline("scaling_4v1", scaling_4)
        .headline("cache_hit_rate", hit_rate)
        .note(
            "workload",
            &format!(
                "{RECEIVERS} receivers x {GOAL_SUBJECTS} goals, {POOL}-cert pool retired \
                 one per wave with periodic fresh imports, publish every quiescence"
            ),
        )
        .note("cores", &cores.to_string())
        .note("window_ms", &window.as_millis().to_string())
        .note("scaling_assertion", &assertions);
    for (n, rate) in &qps {
        report = report.headline(&format!("qps_{n}"), *rate);
    }
    if let Err(e) = report.write_at_repo_root() {
        eprintln!("[obs] BENCH_authz.json not written: {e}");
    }
}

criterion_group!(benches, authz_read_path);
criterion_main!(benches);
