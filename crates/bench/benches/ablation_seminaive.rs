//! Experiment A1: naive vs semi-naive evaluation (the LogicBlox
//! execution model of §3.1) on transitive closure over chain graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbtrust_bench::workloads::{chain_edges, edge_db, TC_PROGRAM};
use lbtrust_datalog::eval::run_naive;
use lbtrust_datalog::{parse_program, Builtins, Engine};

fn seminaive_vs_naive(c: &mut Criterion) {
    let program = parse_program(TC_PROGRAM).unwrap();
    let builtins = Builtins::new();
    let mut group = c.benchmark_group("ablation_seminaive");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let base = edge_db(&chain_edges(n));
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| {
                let mut db = base.clone();
                Engine::new(&program.rules, &builtins).run(&mut db).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let mut db = base.clone();
                run_naive(&program.rules, &mut db, &builtins).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, seminaive_vs_naive);
criterion_main!(benches);
