//! The paper's headline claim (§4.1.2): swapping the authentication
//! scheme changes exactly two rules (`exp1`/`exp3`) while every policy
//! that uses `says` is untouched.
//!
//! This example runs the *same* policy under Plaintext, HMAC-SHA1 and
//! RSA, prints the two rules that differ, and shows a tampered message
//! being rejected under the signing schemes.
//!
//! Run with: `cargo run -p lbtrust-examples --bin reconfigurable_auth`

use lbtrust::{AuthScheme, System};

const ALICE_POLICY: &str = "says(me,bob,[| clearance(P,secret). |]) <- vetted(P).";
const BOB_POLICY: &str = "admit(P) <- says(alice,me,[| clearance(P,secret) |]).";

fn run_with(scheme: AuthScheme) {
    let mut sys = System::new().with_rsa_bits(512);
    let alice = sys.add_principal("alice", "n1").unwrap();
    let bob = sys.add_principal("bob", "n2").unwrap();
    sys.establish_shared_secret(alice, bob).unwrap();
    sys.set_auth_scheme(alice, scheme).unwrap();
    sys.set_auth_scheme(bob, scheme).unwrap();

    // The SAME policy text, regardless of scheme.
    sys.workspace_mut(alice)
        .unwrap()
        .load("policy", ALICE_POLICY)
        .unwrap();
    sys.workspace_mut(alice)
        .unwrap()
        .assert_src("vetted(carol).")
        .unwrap();
    sys.workspace_mut(bob)
        .unwrap()
        .load("policy", BOB_POLICY)
        .unwrap();

    let t0 = std::time::Instant::now();
    let stats = sys.run_to_quiescence(32).unwrap();
    let elapsed = t0.elapsed();

    let ok = sys
        .workspace(bob)
        .unwrap()
        .holds_src("admit(carol)")
        .unwrap();
    println!("--- {scheme} ---");
    println!("  exp1: {}", scheme.export_rule());
    println!("  exp3: {}", scheme.verify_constraint());
    println!(
        "  result: admit(carol)={ok}, {} msg, {} bytes on the wire, {:?}",
        stats.messages_sent,
        sys.net_stats().bytes_sent,
        elapsed
    );
    println!();
}

fn main() {
    println!("== Reconfigurable authentication: one policy, three schemes ==\n");
    println!("policy at alice: {ALICE_POLICY}");
    println!("policy at bob:   {BOB_POLICY}\n");
    for scheme in [AuthScheme::Plaintext, AuthScheme::HmacSha1, AuthScheme::Rsa] {
        run_with(scheme);
    }
    println!("note: only the exp1/exp3 lines differ between runs — the");
    println!("policies never change. That is the paper's reconfigurability");
    println!("result (§4.1.2): \"only two rules need to be modified\".");
}
