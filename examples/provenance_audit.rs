//! Provenance and goal-directed auditing (§7 of the paper): "provenance
//! is useful for analyzing derivations of security policies, runtime
//! verification, and dynamic type checking."
//!
//! A security officer audits *why* an access was granted — tracing the
//! derivation through a delegation chain down to the imported `says`
//! facts — and asks goal-directed what-if questions without
//! materializing the full policy closure.
//!
//! Run with: `cargo run -p lbtrust-examples --bin provenance_audit`

use lbtrust::obs::JsonlSink;
use lbtrust::System;
use lbtrust_d1lp::D1lpPolicy;
use std::sync::Arc;

fn main() {
    let mut sys = System::new().with_rsa_bits(512);
    let hq = sys.add_principal("hq", "dc1").unwrap();
    let contractor = sys.add_principal("contractor", "dc2").unwrap();
    sys.add_principal("auditor", "dc3").unwrap();

    // HQ delegates badge decisions to the contractor.
    D1lpPolicy::new()
        .delegate("hq", "contractor", "badge", Some(0))
        .apply_to(&mut sys)
        .unwrap();

    // HQ policy: building access requires a badge and a schedule entry.
    sys.workspace_mut(hq)
        .unwrap()
        .load(
            "policy",
            "enter(P,B) <- badge(P), scheduled(P,B).\n\
             scheduled(P,B) <- shift(P,B,_).",
        )
        .unwrap();
    sys.workspace_mut(hq)
        .unwrap()
        .assert_src("shift(dana, hq_tower, 1). shift(evan, hq_tower, 2).")
        .unwrap();

    // The contractor issues badges.
    sys.workspace_mut(contractor)
        .unwrap()
        .load("grant", "says(me,hq,[| badge(P). |]) <- vetted(P).")
        .unwrap();
    sys.workspace_mut(contractor)
        .unwrap()
        .assert_src("vetted(dana).")
        .unwrap();

    sys.run_to_quiescence(32).unwrap();

    // Evan's badge arrives as a *certificate* — a signed, durable
    // credential imported into hq's store — so the decision below can
    // cite a content address, not just a derivation.
    let badge_cert = sys
        .issue_certificates(contractor, "badge(evan).", &[], None)
        .unwrap();
    sys.import_certificates(hq, badge_cert).unwrap();
    sys.run_to_quiescence(32).unwrap();

    // Every authorization decision from here on is journaled as one
    // JSON object per line — principal, goal, verdict, and the digests
    // of the certificates the proof rests on.
    let journal_path = std::env::temp_dir().join(format!(
        "provenance_audit_decisions_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal_path);
    sys.enable_decision_journal(Arc::new(JsonlSink::create(&journal_path).unwrap()));

    let hq_ws = sys.workspace(hq).unwrap();
    println!("== Access audit at hq ==\n");
    for (person, building) in [("dana", "hq_tower"), ("evan", "hq_tower")] {
        let fact = format!("enter({person},{building})");
        match hq_ws.explain(&fact).unwrap() {
            Some(proof) => {
                println!("{fact}: GRANTED — derivation:\n{proof}");
            }
            None => println!("{fact}: denied (no derivation)\n"),
        }
    }

    // Goal-directed what-if: what can dana enter? Answered without
    // materializing conclusions about anyone else (§7's magic-sets
    // bridge).
    let answers = hq_ws.query_goal("enter(dana, B)").unwrap();
    println!("goal query enter(dana, B):");
    for t in answers {
        println!("  B = {}", t[1]);
    }

    // Table dump — the stand-in for the paper's §9 visualizer.
    println!("\n{}", hq_ws.dump(&["badge", "scheduled", "enter"]));

    // The officer's decision log: authorize() walks the proof for
    // `says` premises and traces each certified rule back through the
    // store's audit trail to the credential that introduced it.
    println!("== Journaled decisions ==\n");
    for goal in [
        "enter(evan,hq_tower)",
        "enter(dana,hq_tower)",
        "enter(mallory,hq_tower)",
    ] {
        let decision = sys.authorize(hq, goal).unwrap();
        let verdict = if decision.granted {
            "GRANTED"
        } else {
            "denied"
        };
        println!("{goal}: {verdict}");
        for digest in &decision.supporting {
            println!("  supported by certificate {}", digest.to_hex());
        }
    }

    // Evan's grant must cite the badge certificate the audit trail
    // attributes to the contractor.
    let audited = sys.audit_introducers(hq, "badge(evan).").unwrap();
    assert!(!audited.is_empty(), "audit trail lost the badge credential");
    let evan = sys.authorize(hq, "enter(evan,hq_tower)").unwrap();
    assert!(evan.granted);
    assert!(evan
        .supporting
        .iter()
        .any(|d| audited.iter().any(|e| e.digest == *d)));

    sys.flush_decision_journal();
    println!("\n== Decision journal ({}) ==\n", journal_path.display());
    print!("{}", std::fs::read_to_string(&journal_path).unwrap());
    let _ = std::fs::remove_file(&journal_path);
}
