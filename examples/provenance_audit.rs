//! Provenance and goal-directed auditing (§7 of the paper): "provenance
//! is useful for analyzing derivations of security policies, runtime
//! verification, and dynamic type checking."
//!
//! A security officer audits *why* an access was granted — tracing the
//! derivation through a delegation chain down to the imported `says`
//! facts — and asks goal-directed what-if questions without
//! materializing the full policy closure.
//!
//! Run with: `cargo run -p lbtrust-examples --bin provenance_audit`

use lbtrust::System;
use lbtrust_d1lp::D1lpPolicy;

fn main() {
    let mut sys = System::new().with_rsa_bits(512);
    let hq = sys.add_principal("hq", "dc1").unwrap();
    let contractor = sys.add_principal("contractor", "dc2").unwrap();
    sys.add_principal("auditor", "dc3").unwrap();

    // HQ delegates badge decisions to the contractor.
    D1lpPolicy::new()
        .delegate("hq", "contractor", "badge", Some(0))
        .apply_to(&mut sys)
        .unwrap();

    // HQ policy: building access requires a badge and a schedule entry.
    sys.workspace_mut(hq)
        .unwrap()
        .load(
            "policy",
            "enter(P,B) <- badge(P), scheduled(P,B).\n\
             scheduled(P,B) <- shift(P,B,_).",
        )
        .unwrap();
    sys.workspace_mut(hq)
        .unwrap()
        .assert_src("shift(dana, hq_tower, 1). shift(evan, hq_tower, 2).")
        .unwrap();

    // The contractor issues badges.
    sys.workspace_mut(contractor)
        .unwrap()
        .load("grant", "says(me,hq,[| badge(P). |]) <- vetted(P).")
        .unwrap();
    sys.workspace_mut(contractor)
        .unwrap()
        .assert_src("vetted(dana).")
        .unwrap();

    sys.run_to_quiescence(32).unwrap();

    let hq_ws = sys.workspace(hq).unwrap();
    println!("== Access audit at hq ==\n");
    for (person, building) in [("dana", "hq_tower"), ("evan", "hq_tower")] {
        let fact = format!("enter({person},{building})");
        match hq_ws.explain(&fact).unwrap() {
            Some(proof) => {
                println!("{fact}: GRANTED — derivation:\n{proof}");
            }
            None => println!("{fact}: denied (no derivation)\n"),
        }
    }

    // Goal-directed what-if: what can dana enter? Answered without
    // materializing conclusions about anyone else (§7's magic-sets
    // bridge).
    let answers = hq_ws.query_goal("enter(dana, B)").unwrap();
    println!("goal query enter(dana, B):");
    for t in answers {
        println!("  B = {}", t[1]);
    }

    // Table dump — the stand-in for the paper's §9 visualizer.
    println!("\n{}", hq_ws.dump(&["badge", "scheduled", "enter"]));
}
