//! Delegation thresholds (§4.2.2 of the paper): "a bank may consider a
//! customer's credit okay if at least three credit bureaus do" — plus the
//! weighted variant where bureaus have reliability factors.
//!
//! Run with: `cargo run -p lbtrust-examples --bin credit_check`

use lbtrust::System;
use lbtrust_d1lp::D1lpPolicy;
use lbtrust_datalog::Symbol;

fn approve(sys: &mut System, bureau: &str, customer: &str) {
    let p = Symbol::intern(bureau);
    sys.workspace_mut(p)
        .unwrap()
        .load(
            &format!("approval-{customer}"),
            &format!("says(me,bank,[| creditOK({customer}). |]) <- checked({customer})."),
        )
        .unwrap();
    sys.workspace_mut(p)
        .unwrap()
        .assert_src(&format!("checked({customer})."))
        .unwrap();
}

fn main() {
    println!("== LBTrust credit check: k-of-n threshold delegation ==\n");

    // ---- unweighted: 3 of 4 bureaus must concur (wd0-wd2) -------------
    let mut sys = System::new().with_rsa_bits(512);
    sys.add_principal("bank", "hq").unwrap();
    for b in ["equifox", "experiun", "transonion", "smallshop"] {
        sys.add_principal(b, "bureau-dc").unwrap();
    }
    D1lpPolicy::new()
        .threshold("bank", "creditBureau", "creditOK", 3)
        .group_member("creditBureau", "equifox", 1)
        .group_member("creditBureau", "experiun", 1)
        .group_member("creditBureau", "transonion", 1)
        .group_member("creditBureau", "smallshop", 1)
        .apply_to(&mut sys)
        .unwrap();

    // customer1: three approvals. customer2: only two.
    for b in ["equifox", "experiun", "transonion"] {
        approve(&mut sys, b, "customer1");
    }
    for b in ["equifox", "smallshop"] {
        approve(&mut sys, b, "customer2");
    }
    sys.run_to_quiescence(32).unwrap();

    let bank = Symbol::intern("bank");
    println!("unweighted threshold (need 3 of 4):");
    for c in ["customer1", "customer2"] {
        let count = sys
            .workspace(bank)
            .unwrap()
            .tuples(Symbol::intern("creditOKCount"))
            .into_iter()
            .find(|t| t[0].to_string() == c)
            .map(|t| t[1].to_string())
            .unwrap_or_else(|| "0".into());
        let ok = sys
            .workspace(bank)
            .unwrap()
            .holds_src(&format!("creditOK({c})"))
            .unwrap();
        println!(
            "  {c}: {count} approvals -> {}",
            if ok { "credit OK" } else { "declined" }
        );
    }

    // ---- weighted: reliability factors (the paper's `total` variant) ---
    let mut sys = System::new().with_rsa_bits(512);
    sys.add_principal("bank", "hq").unwrap();
    for b in ["bigthree", "boutique"] {
        sys.add_principal(b, "bureau-dc").unwrap();
    }
    D1lpPolicy::new()
        .weighted_threshold("bank", "bureaus", "creditOK", 3)
        .group_member("bureaus", "bigthree", 3)
        .group_member("bureaus", "boutique", 1)
        .apply_to(&mut sys)
        .unwrap();
    approve(&mut sys, "boutique", "customer3"); // weight 1: not enough
    approve(&mut sys, "bigthree", "customer4"); // weight 3: enough alone
    sys.run_to_quiescence(32).unwrap();

    println!("\nweighted threshold (need total weight 3; bigthree=3, boutique=1):");
    for c in ["customer3", "customer4"] {
        let ok = sys
            .workspace(bank)
            .unwrap()
            .holds_src(&format!("creditOK({c})"))
            .unwrap();
        println!("  {c}: {}", if ok { "credit OK" } else { "declined" });
    }
}
