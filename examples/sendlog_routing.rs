//! SeNDlog secure declarative networking (§5.2 of the paper):
//! authenticated reachability and an authenticated path-vector protocol
//! on a small topology, with every protocol message signed and verified.
//!
//! Run with: `cargo run -p lbtrust-examples --bin sendlog_routing`

use lbtrust::AuthScheme;
use lbtrust_sendlog::{SendlogNetwork, PATH_VECTOR, REACHABILITY};

fn main() {
    println!("== SeNDlog on LBTrust: authenticated routing ==\n");

    //      a --- b --- c
    //             \    |
    //              \   |
    //                d
    let topology = [("a", "b"), ("b", "c"), ("b", "d"), ("c", "d")];

    // ---- reachability (the paper's s1/s2) ------------------------------
    let mut net = SendlogNetwork::new(
        &["a", "b", "c", "d"],
        REACHABILITY,
        AuthScheme::HmacSha1,
        512,
    )
    .expect("build network");
    for (x, y) in topology {
        net.add_bidi_link(x, y).unwrap();
    }
    let stats = net.run(64).expect("quiescence");
    println!(
        "reachability converged: {} protocol messages ({} accepted)\n",
        stats.messages_sent, stats.messages_accepted
    );
    for src in ["a", "b", "c", "d"] {
        let mut reached: Vec<&str> = Vec::new();
        for dst in ["a", "b", "c", "d"] {
            if src != dst && net.reaches(src, dst).unwrap() {
                reached.push(dst);
            }
        }
        println!("  {src} reaches: {}", reached.join(", "));
    }

    // ---- authenticated path-vector --------------------------------------
    let mut net = SendlogNetwork::new(&["a", "b", "c", "d"], PATH_VECTOR, AuthScheme::Rsa, 512)
        .expect("build network");
    for (x, y) in topology {
        net.add_bidi_link(x, y).unwrap();
    }
    let stats = net.run(128).expect("quiescence");
    println!(
        "\npath-vector converged: {} RSA-signed messages\n",
        stats.messages_sent
    );
    let paths = net.tuples_at("a", "path").unwrap();
    println!("paths known at node a:");
    for p in paths.iter().filter(|p| p.starts_with("a,")) {
        println!("  {p}");
    }
}
