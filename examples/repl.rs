//! An interactive LBTrust workspace — explore the dialect from a shell.
//!
//! ```text
//! cargo run -p lbtrust-examples --bin repl
//! lbtrust> edge(a,b). edge(b,c).
//! lbtrust> reach(X,Y) <- edge(X,Y).
//! lbtrust> reach(X,Z) <- reach(X,Y), edge(Y,Z).
//! lbtrust> ?- reach(a, X).
//! reach(a,b)
//! reach(a,c)
//! lbtrust> :explain reach(a,c)
//! reach(a,c) [via reach(X,Z) <- reach(X,Y), edge(Y,Z).]
//!   ...
//! ```
//!
//! Commands: plain rules/facts/constraints are installed and evaluated;
//! `?- atom.` runs a goal-directed query (magic sets); `:explain fact`
//! prints a derivation; `:dump pred` prints a table; `:rules` lists the
//! active rules; `:quit` exits.

use lbtrust::Workspace;
use std::io::{BufRead, Write};

fn main() {
    let mut ws = Workspace::new("repl");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("LBTrust workspace (principal `repl`). :quit to exit.");
    loop {
        print!("lbtrust> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(":") {
            let mut parts = rest.splitn(2, ' ');
            match (parts.next().unwrap_or(""), parts.next().unwrap_or("")) {
                ("quit", _) | ("q", _) => break,
                ("rules", _) => {
                    for rule in ws.active_rules() {
                        println!("  {rule}");
                    }
                }
                ("dump", pred) if !pred.is_empty() => {
                    print!("{}", ws.dump(&[pred.trim()]));
                }
                ("explain", fact) if !fact.is_empty() => {
                    match ws.explain(fact.trim().trim_end_matches('.')) {
                        Ok(Some(proof)) => print!("{proof}"),
                        Ok(None) => println!("  does not hold"),
                        Err(e) => println!("  error: {e}"),
                    }
                }
                _ => println!("  commands: :rules  :dump <pred>  :explain <fact>  :quit"),
            }
            continue;
        }
        if let Some(goal) = line.strip_prefix("?-") {
            let goal = goal.trim().trim_end_matches('.');
            match ws.query_goal(goal) {
                Ok(answers) if answers.is_empty() => println!("  no"),
                Ok(answers) => {
                    for t in answers {
                        let row: Vec<String> = t.iter().map(ToString::to_string).collect();
                        println!("  ({})", row.join(", "));
                    }
                }
                Err(e) => println!("  error: {e}"),
            }
            continue;
        }
        // Facts go through assert_src, everything else through load.
        let result = if looks_like_facts(line) {
            ws.assert_src(line)
        } else {
            ws.load("repl", line)
        };
        if let Err(e) = result {
            println!("  error: {e}");
            continue;
        }
        match ws.evaluate() {
            Ok(stats) => println!("  ok ({} new tuple(s))", stats.derived),
            Err(e) => println!("  rejected: {e}"),
        }
    }
}

/// Crude but effective: a statement without `<-`, `:-` or `->` is a fact
/// list.
fn looks_like_facts(line: &str) -> bool {
    !line.contains("<-") && !line.contains(":-") && !line.contains("->")
}
