//! Quickstart: Binder's introductory policy (§2.2 of the paper) running
//! on LBTrust with RSA-authenticated communication.
//!
//! Two principals, alice and bob, on different (simulated) nodes. Bob
//! tells alice who may access her files; alice's policy grants access on
//! bob's word — the paper's rule `b2`, in LBTrust form `bex1'`.
//!
//! Run with: `cargo run -p lbtrust-examples --bin quickstart`

use lbtrust::{AuthScheme, System};

fn main() {
    // 512-bit keys keep the example snappy; the benchmarks use the
    // paper's 1024.
    let mut sys = System::new().with_rsa_bits(512);
    let alice = sys.add_principal("alice", "node1").expect("register alice");
    let bob = sys.add_principal("bob", "node2").expect("register bob");

    println!("== LBTrust quickstart ==");
    println!(
        "principals: alice on {}, bob on {} ({} auth)\n",
        sys.location(alice).unwrap(),
        sys.location(bob).unwrap(),
        sys.auth_scheme(alice).unwrap_or(AuthScheme::Rsa),
    );

    // Alice's policy (b1 + b2 from the paper, range-restricted):
    //   anyone locally known to be good may read,
    //   and anyone bob vouches for may read.
    sys.workspace_mut(alice)
        .unwrap()
        .load(
            "policy",
            "access(P,O,read) <- good(P), object(O).\n\
             access(P,O,read) <- says(bob,me,[| access(P,O,read) |]).",
        )
        .expect("alice policy");
    sys.workspace_mut(alice)
        .unwrap()
        .assert_src("good(carol). object(file1).")
        .expect("alice facts");

    // Bob's context: he derives access judgements and exports them.
    sys.workspace_mut(bob)
        .unwrap()
        .load(
            "policy",
            "access(P,O,read) <- hired(P), object(O).\n\
             says(me,alice,[| access(P,O,read). |]) <- access(P,O,read).",
        )
        .expect("bob policy");
    sys.workspace_mut(bob)
        .unwrap()
        .assert_src("hired(dave). object(file1).")
        .expect("bob facts");

    // Run the distributed fixpoint: bob's conclusion travels to alice
    // inside an RSA-signed message; alice verifies and imports it.
    let stats = sys.run_to_quiescence(32).expect("quiescence");

    println!("distributed fixpoint finished:");
    println!("  messages sent      {}", stats.messages_sent);
    println!("  messages accepted  {}", stats.messages_accepted);
    println!("  messages rejected  {}", stats.messages_rejected);
    println!();

    let alice_ws = sys.workspace(alice).unwrap();
    for query in [
        "access(carol,file1,read)", // local, via good(carol)
        "access(dave,file1,read)",  // imported on bob's word
        "access(eve,file1,read)",   // nobody vouched
    ] {
        println!(
            "alice |- {query:<28} {}",
            if alice_ws.holds_src(query).unwrap() {
                "GRANTED"
            } else {
                "denied"
            }
        );
    }
}
