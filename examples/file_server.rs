//! The paper's demonstration scenario (§9): a multi-principal file system
//! with access control, delegation to an AccessManager, depth
//! restriction, and threshold confirmation.
//!
//! Workflow of Figure 3(b):
//!
//! ```text
//!   requester ──(1) request──▶ filestore ──(2) check──▶ fileowner
//!                                  ▲                        │ delegates
//!                                  │                        ▼
//!              (4) data ◀──────────┘        (3) decide  accessmgr(s)
//! ```
//!
//! Run with: `cargo run -p lbtrust-examples --bin file_server`

use lbtrust::{System, Workspace};
use lbtrust_d1lp::D1lpPolicy;
use lbtrust_datalog::{Symbol, Value};

fn show(ws: &Workspace, pred: &str) {
    let tuples = ws.tuples(Symbol::intern(pred));
    println!("  {} @ {}:", pred, ws.me());
    if tuples.is_empty() {
        println!("    (none)");
    }
    for t in tuples {
        let row: Vec<String> = t.iter().map(ToString::to_string).collect();
        println!("    {}({})", pred, row.join(", "));
    }
}

fn main() {
    let mut sys = System::new().with_rsa_bits(512);
    let requester = sys.add_principal("requester", "laptop").unwrap();
    let filestore = sys.add_principal("filestore", "server1").unwrap();
    let fileowner = sys.add_principal("fileowner", "server2").unwrap();
    // Three access managers for the threshold variant.
    for m in ["mgr1", "mgr2", "mgr3"] {
        sys.add_principal(m, "server3").unwrap();
    }

    println!("== LBTrust file server (the paper's §9 demonstration) ==\n");

    // ---- file metadata at the store (f1-f6 of the paper) --------------
    sys.workspace_mut(filestore)
        .unwrap()
        .assert_src(
            "file(f1). filename(f1, \"report.txt\"). filedata(f1, \"Q2 numbers...\").\n\
             fileowner(f1, fileowner). filestore(f1, filestore).",
        )
        .unwrap();

    // The store grants read access iff the owner's side says the
    // requester has permission (dfs1/dfs2, simplified to the read path).
    sys.workspace_mut(filestore)
        .unwrap()
        .load(
            "policy",
            "grant(U,F,read) <- request(U,F,read), \
                               says(fileowner,me,[| permission(U,F,read) |]).\n\
             says(me,U,[| filecontent(F,D). |]) <- grant(U,F,read), filedata(F,D).",
        )
        .unwrap();

    // ---- the owner delegates decisions to the access managers ----------
    // Depth 0: managers may not re-delegate.
    D1lpPolicy::new()
        .delegate("fileowner", "mgr1", "mayread", Some(0))
        .delegate("fileowner", "mgr2", "mayread", Some(0))
        .delegate("fileowner", "mgr3", "mayread", Some(0))
        .apply_to(&mut sys)
        .unwrap();
    // Threshold: the owner's permission stands only when at least 2 of 3
    // managers confirm. The owner also *exports* says facts, so the
    // cycle-free vote variant is required (see
    // `lbtrust::delegation::threshold_vote_rules`).
    sys.workspace_mut(fileowner)
        .unwrap()
        .load(
            "threshold",
            &lbtrust::delegation::threshold_vote_rules("accessMgrGroup", "mayread", 2),
        )
        .unwrap();
    for m in ["mgr1", "mgr2", "mgr3"] {
        sys.workspace_mut(fileowner)
            .unwrap()
            .assert_src(&format!("pringroup({m}, accessMgrGroup)."))
            .unwrap();
    }

    // Owner: permission follows the threshold-confirmed mayread for the
    // file actually asked about, and is exported to the store.
    sys.workspace_mut(fileowner)
        .unwrap()
        .load(
            "policy",
            "permission(U,F,read) <- mayread(U), askedfor(U,F).\n\
             says(me,filestore,[| permission(U,F,read). |]) <- permission(U,F,read).",
        )
        .unwrap();
    sys.workspace_mut(fileowner)
        .unwrap()
        .assert_src("askedfor(requester, f1).")
        .unwrap();

    // Managers 1 and 2 confirm the requester; manager 3 stays silent.
    // Votes carry the voter's name (pinned to the sender by the
    // threshold prelude's authenticity constraint).
    for m in ["mgr1", "mgr2"] {
        let p = Symbol::intern(m);
        sys.workspace_mut(p)
            .unwrap()
            .load(
                "decision",
                "says(me,fileowner,[| mayreadVote(me,requester). |]) <- approve(requester).",
            )
            .unwrap();
        sys.workspace_mut(p)
            .unwrap()
            .assert_src("approve(requester).")
            .unwrap();
    }

    // The requester asks the store for the file (message ① of Fig. 3).
    sys.workspace_mut(requester)
        .unwrap()
        .load(
            "request",
            "says(me,filestore,[| request(requester,F,read). |]) <- want(F).",
        )
        .unwrap();
    sys.workspace_mut(requester)
        .unwrap()
        .assert_src("want(f1).")
        .unwrap();

    // The store accepts request facts said to it.
    sys.workspace_mut(filestore)
        .unwrap()
        .load(
            "import",
            "request(U,F,M) <- says(U,me,[| request(U,F,M) |]).",
        )
        .unwrap();
    // And the requester accepts file content said to it.
    sys.workspace_mut(requester)
        .unwrap()
        .load(
            "import",
            "filecontent(F,D) <- says(filestore,me,[| filecontent(F,D) |]).",
        )
        .unwrap();

    let stats = sys.run_to_quiescence(64).expect("quiescence");
    println!(
        "fixpoint: {} messages, {} accepted, {} rejected\n",
        stats.messages_sent, stats.messages_accepted, stats.messages_rejected
    );

    println!("state after the read workflow:");
    show(sys.workspace(fileowner).unwrap(), "mayreadCount");
    show(sys.workspace(fileowner).unwrap(), "permission");
    show(sys.workspace(filestore).unwrap(), "grant");
    show(sys.workspace(requester).unwrap(), "filecontent");

    let got = sys
        .workspace(requester)
        .unwrap()
        .holds_src("filecontent(f1, \"Q2 numbers...\")")
        .unwrap();
    println!(
        "\nrequester received the file: {}",
        if got { "YES" } else { "no" }
    );

    // ---- depth restriction in action -----------------------------------
    // mgr1 (depth 0) tries to re-delegate its authority: rejected.
    println!("\nmgr1 attempts to re-delegate mayread (depth budget 0)...");
    let mgr1 = Symbol::intern("mgr1");
    sys.workspace_mut(mgr1).unwrap().assert_fact(
        Symbol::intern("delegates"),
        vec![
            Value::sym("mgr1"),
            Value::sym("requester"),
            Value::sym("mayread"),
        ],
    );
    match sys.workspace_mut(mgr1).unwrap().evaluate() {
        Err(e) => println!("  rejected as expected: {e}"),
        Ok(_) => println!("  UNEXPECTED: re-delegation was allowed"),
    }
}
